#include "net/sockets.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace abenc::net {
namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void SetTimeouts(int fd, std::chrono::milliseconds io_timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

sockaddr_un UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

std::string Endpoint::ToString() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint ParseEndpoint(const std::string& text) {
  Endpoint endpoint;
  if (text.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = text.substr(5);
    if (endpoint.path.empty()) {
      throw NetError("endpoint '" + text + "' has an empty unix path");
    }
    return endpoint;
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw NetError("endpoint '" + text + "' is not tcp:HOST:PORT");
    }
    endpoint.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (port_text.empty() || *end != '\0' || port > 65535) {
      throw NetError("endpoint '" + text + "' has a bad port");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  throw NetError("endpoint '" + text +
                 "' must start with 'tcp:' or 'unix:'");
}

int ListenOn(Endpoint& endpoint) {
  const int family = endpoint.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) FailErrno("socket");
  if (endpoint.is_unix) {
    ::unlink(endpoint.path.c_str());  // stale socket from a dead server
    sockaddr_un addr = UnixAddress(endpoint.path);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      CloseFd(fd);
      FailErrno("bind '" + endpoint.path + "'");
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      CloseFd(fd);
      throw NetError("cannot parse host '" + endpoint.host + "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      CloseFd(fd);
      FailErrno("bind " + endpoint.ToString());
    }
    if (endpoint.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        CloseFd(fd);
        FailErrno("getsockname");
      }
      endpoint.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    FailErrno("listen " + endpoint.ToString());
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

int DialEndpoint(const Endpoint& endpoint,
                 std::chrono::milliseconds io_timeout) {
  const int family = endpoint.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) FailErrno("socket");
  SetTimeouts(fd, io_timeout);
  int rc;
  if (endpoint.is_unix) {
    sockaddr_un addr = UnixAddress(endpoint.path);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
      CloseFd(fd);
      throw NetError("cannot parse host '" + endpoint.host + "'");
    }
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) SetNoDelay(fd);
  }
  if (rc != 0) {
    const int saved = errno;
    CloseFd(fd);
    errno = saved;
    FailErrno("connect " + endpoint.ToString());
  }
  return fd;
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Fails with EOPNOTSUPP on AF_UNIX sockets; that is the no-op case.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("send timed out");
      }
      FailErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t RecvSome(int fd, std::uint8_t* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw NetError("recv timed out");
    }
    FailErrno("recv");
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace abenc::net
