// Working-zone code (Musoll/Lang/Cortadella style) — redundant extension
// exercised by the "future work" benches.
#pragma once

#include <vector>

#include "core/codec.h"

namespace abenc {

/// Exploits the observation that address streams interleave references to a
/// few "working zones" (code, stack, heap arrays). Both ends keep K zone
/// registers holding the last address referenced in each zone. When a new
/// address lands within a signed 2^(F-1) window of some zone, only the zone
/// index and a Gray-coded biased offset are transmitted, the upper bus
/// lines are frozen, and the redundant WZ line is asserted; otherwise the
/// address travels in plain binary with WZ low and the least-recently-used
/// zone register is re-seeded.
///
/// This is a simplified but fully decodable variant of the published code
/// (the original transmits one-hot offsets); the zone-register and LRU
/// update rules are driven purely by information visible on the bus, so
/// encoder and decoder stay in lock-step by construction.
///
/// On the suspected wrap-around bug at the address-space edges (refuted):
/// FindZone's hit test and BiasedOffset both evaluate addr - zone + bias
/// modulo 2^width, and Decode computes zone + offset - bias under the
/// same modulus, so the bias addition and subtraction cancel exactly
/// even when the window straddles 0 or 2^width - 1 (e.g. zone at
/// 0xFFFFFFFC covering small positive addresses, or zone 0x2 reaching
/// back to 0xFFFFFFF0). Round-trip is exact by modular arithmetic, and
/// treating the address space as a ring is the intended behaviour — a
/// stack zone near the top of memory keeps hitting across the wrap
/// instead of paying a full-width re-seed. Pinned by
/// WorkingZoneCodecTest.*Wrap* regression tests.
class WorkingZoneCodec final : public Codec {
 public:
  WorkingZoneCodec(unsigned width, unsigned zones = 4, unsigned offset_bits = 8)
      : Codec(width), zones_(zones), offset_bits_(offset_bits) {
    if (zones == 0 || !IsPowerOfTwo(zones)) {
      throw CodecConfigError("working-zone count must be a power of two");
    }
    zone_bits_ = Log2(zones);
    if (offset_bits == 0 || offset_bits + zone_bits_ > width) {
      throw CodecConfigError(
          "working-zone offset+index bits must fit in the bus width");
    }
    Reset();
  }

  std::string name() const override {
    return "working-zone-z" + std::to_string(zones_);
  }
  std::string display_name() const override { return "Working-Zone"; }
  unsigned redundant_lines() const override { return 1; }

  BusState Encode(Word address, bool /*sel*/) override {
    const Word b = Mask(address);
    BusState out;
    const int hit = enc_.FindZone(b, offset_bits_, width());
    if (hit >= 0) {
      const Word offset =
          BiasedOffset(b, enc_.zone[static_cast<unsigned>(hit)]);
      Word lines = enc_prev_bus_;
      lines &= ~LowMask(offset_bits_ + zone_bits_);  // freeze upper lines
      lines |= BinaryToGray(offset);
      lines |= Word{static_cast<unsigned>(hit)} << offset_bits_;
      out = BusState{Mask(lines), 1};
    } else {
      out = BusState{b, 0};
    }
    enc_.Update(hit, b);
    enc_prev_bus_ = out.lines;
    return out;
  }

  Word Decode(const BusState& bus, bool /*sel*/) override {
    Word b;
    int hit = -1;
    if (bus.redundant & 1) {
      const Word idx = (bus.lines >> offset_bits_) & LowMask(zone_bits_);
      const Word offset = GrayToBinary(bus.lines & LowMask(offset_bits_));
      b = Mask(dec_.zone[idx] + offset - Bias());
      hit = static_cast<int>(idx);
    } else {
      b = Mask(bus.lines);
    }
    dec_.Update(hit, b);
    return b;
  }

  void Reset() override {
    enc_ = ZoneFile(zones_);
    dec_ = ZoneFile(zones_);
    enc_prev_bus_ = 0;
  }

  unsigned zones() const { return zones_; }
  unsigned offset_bits() const { return offset_bits_; }

 private:
  Word Bias() const { return Word{1} << (offset_bits_ - 1); }

  Word BiasedOffset(Word addr, Word zone) const {
    return (addr - zone + Bias()) & LowMask(offset_bits_);
  }

  struct ZoneFile {
    ZoneFile() = default;
    explicit ZoneFile(unsigned k) : zone(k, 0), lru(k) {
      for (unsigned i = 0; i < k; ++i) lru[i] = i;  // front = most recent
    }

    /// Index of a zone whose window covers `addr`, or -1.
    int FindZone(Word addr, unsigned offset_bits, unsigned width) const {
      const Word bias = Word{1} << (offset_bits - 1);
      for (unsigned i = 0; i < zone.size(); ++i) {
        const Word biased = (addr - zone[i] + bias) & LowMask(width);
        if (biased < (Word{1} << offset_bits)) return static_cast<int>(i);
      }
      return -1;
    }

    /// On hit: move zone to MRU and slide it to `addr`.
    /// On miss (hit < 0): re-seed the LRU zone with `addr`.
    void Update(int hit, Word addr) {
      unsigned victim =
          hit >= 0 ? static_cast<unsigned>(hit) : lru.back();
      zone[victim] = addr;
      for (unsigned i = 0; i < lru.size(); ++i) {
        if (lru[i] == victim) {
          lru.erase(lru.begin() + i);
          break;
        }
      }
      lru.insert(lru.begin(), victim);
    }

    std::vector<Word> zone;
    std::vector<unsigned> lru;
  };

  unsigned zones_;
  unsigned offset_bits_;
  unsigned zone_bits_ = 0;
  ZoneFile enc_;
  ZoneFile dec_;
  Word enc_prev_bus_ = 0;
};

}  // namespace abenc
