file(REMOVE_RECURSE
  "libabenc_sim.a"
)
