#include "service/renegotiation.h"

#include <algorithm>

namespace abenc::service {

bool RenegotiationPolicy::InPalette(const std::string& codec_name) const {
  return std::find(palette.begin(), palette.end(), codec_name) !=
         palette.end();
}

std::string RenegotiationPolicy::Recommend(const AdaptiveWindowStats& window,
                                           unsigned width,
                                           const std::string& active) const {
  if (window.accesses < min_window_accesses) return "";

  const double accesses = static_cast<double>(window.accesses);
  const double sel_fraction =
      static_cast<double>(window.sel_high) / accesses;
  const bool mixed_sel =
      sel_fraction >= mixed_sel_low && sel_fraction <= mixed_sel_high;

  std::string candidate;
  if (window.in_sequence_percent() >= sequential_in_seq_percent) {
    // Sequential regime: T0 freezes the bus on in-sequence steps; on a
    // multiplexed stream the dual code keeps one history per source.
    candidate = mixed_sel ? "dual-t0-bi" : "t0";
  } else if (window.toggle_density() >
             static_cast<double>(width) * dense_toggle_fraction) {
    // Random-like regime: bus-invert bounds the per-cycle toggle count.
    candidate = "bus-invert";
  } else {
    // Unit-stride counting that the configured stride misses: Gray's
    // single-toggle increments. Steps observed = accesses - 1.
    const auto unit = window.stride_histogram.find(Word{1});
    if (unit != window.stride_histogram.end() && window.accesses > 1 &&
        static_cast<double>(unit->second) >=
            unit_stride_fraction * static_cast<double>(window.accesses - 1)) {
      candidate = "gray";
    }
  }

  if (candidate.empty() || candidate == active || !InPalette(candidate)) {
    return "";
  }
  return candidate;
}

}  // namespace abenc::service
