file(REMOVE_RECURSE
  "CMakeFiles/bench_stride_sweep.dir/bench_stride_sweep.cpp.o"
  "CMakeFiles/bench_stride_sweep.dir/bench_stride_sweep.cpp.o.d"
  "bench_stride_sweep"
  "bench_stride_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stride_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
