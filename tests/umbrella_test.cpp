// Compile-and-smoke test for the umbrella header: one end-to-end flow
// touching every layer through the single include.
#include "abenc.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, EndToEndFlowCompilesAndRuns) {
  using namespace abenc;

  // trace -> codec -> evaluation
  SyntheticGenerator gen(1);
  const AddressTrace trace = gen.MultiplexedLike(2000, 0.35, 4, 32);
  auto codec = MakeCodec("dual-t0-bi");
  const EvalResult eval =
      Evaluate(*codec, trace.ToBusAccesses(), 4, true);
  EXPECT_GT(eval.transitions, 0);

  // analysis
  EXPECT_GT(BusInvertEta(32), 0.0);
  EXPECT_GE(MarkovExpectedTransitions("t0", 32, 4, 0.5), 0.0);

  // simulator
  const sim::ProgramTraces traces =
      sim::RunBenchmark(sim::FindBenchmarkProgram("dhry"));
  EXPECT_GT(traces.retired_instructions, 0u);

  // gate
  const gate::CodecCircuit enc = gate::BuildT0Encoder(8, 4, 0.1);
  gate::GateSimulator sim(enc.netlist);
  sim.Cycle(gate::DriveInputs(enc, 0x10, true));
  EXPECT_GE(gate::AnalyzeTiming(enc.netlist).critical_path_ns, 0.0);

  // report
  TextTable table({"k", "v"});
  table.AddRow({"x", FormatPercent(12.5)});
  EXPECT_FALSE(table.ToString().empty());
}

}  // namespace
