// Ablation: bus-invert's random-stream savings vs bus width (Eq. 5
// asymptotics) — analytical eta against a Monte-Carlo run of the codec,
// plus the partitioned-bus-invert variant that recovers the narrow-bus
// advantage on wide buses.
#include <iostream>

#include "analysis/analytical.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "trace/synthetic.h"

int main() {
  using namespace abenc;

  std::cout << "Ablation: bus-invert savings on uniform random streams vs "
               "bus width\n(savings relative to binary's N/2 transitions "
               "per cycle; Eq. 5 vs 100k-address Monte-Carlo)\n\n";

  TextTable table({"N", "eta (Eq. 5)", "analytic savings",
                   "measured savings", "partitioned (8-bit slices)"});

  SyntheticGenerator gen(31337);
  for (unsigned width : {8u, 16u, 24u, 32u, 40u, 48u, 56u, 64u}) {
    const double eta = BusInvertEta(width);
    const double analytic = 100.0 * (1.0 - eta / (width / 2.0));

    CodecOptions options;
    options.width = width;
    const AddressTrace trace = gen.UniformRandom(100000, width);
    const auto accesses = trace.ToBusAccesses();

    auto binary = MakeCodec("binary", options);
    const EvalResult base = Evaluate(*binary, accesses, 4, true);
    auto plain = MakeCodec("bus-invert", options);
    const EvalResult flat = Evaluate(*plain, accesses, 4, true);

    options.partitions = width / 8;
    auto partitioned = MakeCodec("bus-invert", options);
    const EvalResult sliced = Evaluate(*partitioned, accesses, 4, true);

    table.AddRow({std::to_string(width), FormatFixed(eta, 4),
                  FormatPercent(analytic),
                  FormatPercent(SavingsPercent(flat.transitions,
                                               base.transitions)),
                  FormatPercent(SavingsPercent(sliced.transitions,
                                               base.transitions))});
  }
  std::cout << table.ToString();
  std::cout << "\nSingle-INV bus-invert fades as N grows (the binomial\n"
               "concentrates at N/2); partitioning restores the savings at\n"
               "the cost of one INV line per slice.\n";
  return 0;
}
