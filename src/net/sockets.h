// Thin POSIX socket helpers shared by the server, the client library
// and the tests: endpoint strings, dialing, and timed blocking I/O.
//
// Endpoints are spelled as strings so every CLI and config field can
// carry either transport:
//   "tcp:HOST:PORT"  - IPv4 TCP (PORT 0 binds an ephemeral port)
//   "unix:PATH"      - AF_UNIX stream socket at PATH
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace abenc::net {

/// Thrown for transport-level failures (dial, send, recv, timeouts) —
/// distinct from WireError, which is about the bytes themselves.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

struct Endpoint {
  bool is_unix = false;
  std::string host;  // tcp only
  std::uint16_t port = 0;
  std::string path;  // unix only

  std::string ToString() const;
};

/// Parse "tcp:HOST:PORT" / "unix:PATH"; throws NetError on anything else.
Endpoint ParseEndpoint(const std::string& text);

/// Create + bind + listen; returns the listening fd (non-blocking).
/// For tcp port 0 the bound port is written back into `endpoint`.
int ListenOn(Endpoint& endpoint);

/// Blocking connect with a timeout; returns a connected blocking fd
/// with the given send/receive timeouts installed.
int DialEndpoint(const Endpoint& endpoint,
                 std::chrono::milliseconds io_timeout);

/// Disable Nagle's algorithm (TCP_NODELAY). Without this, writing a
/// second small frame while the first is still unacknowledged stalls
/// until the peer's delayed ACK (~40ms) — fatal for pipelined
/// SUBMIT_STREAM windows, harmless to enable everywhere. A no-op on
/// non-TCP sockets.
void SetNoDelay(int fd);

/// Send every byte (MSG_NOSIGNAL); throws NetError on failure/timeout.
void SendAll(int fd, const std::uint8_t* data, std::size_t size);

/// Receive up to `size` bytes; returns 0 on orderly peer close; throws
/// NetError on failure or when the socket's receive timeout expires.
std::size_t RecvSome(int fd, std::uint8_t* data, std::size_t size);

/// Close ignoring errors; safe on -1.
void CloseFd(int fd);

}  // namespace abenc::net
