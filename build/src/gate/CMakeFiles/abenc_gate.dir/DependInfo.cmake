
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/circuits.cpp" "src/gate/CMakeFiles/abenc_gate.dir/circuits.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/circuits.cpp.o.d"
  "/root/repo/src/gate/power.cpp" "src/gate/CMakeFiles/abenc_gate.dir/power.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/power.cpp.o.d"
  "/root/repo/src/gate/probabilistic.cpp" "src/gate/CMakeFiles/abenc_gate.dir/probabilistic.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/probabilistic.cpp.o.d"
  "/root/repo/src/gate/simulator.cpp" "src/gate/CMakeFiles/abenc_gate.dir/simulator.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/simulator.cpp.o.d"
  "/root/repo/src/gate/system.cpp" "src/gate/CMakeFiles/abenc_gate.dir/system.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/system.cpp.o.d"
  "/root/repo/src/gate/timing.cpp" "src/gate/CMakeFiles/abenc_gate.dir/timing.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/timing.cpp.o.d"
  "/root/repo/src/gate/vcd.cpp" "src/gate/CMakeFiles/abenc_gate.dir/vcd.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/vcd.cpp.o.d"
  "/root/repo/src/gate/verilog.cpp" "src/gate/CMakeFiles/abenc_gate.dir/verilog.cpp.o" "gcc" "src/gate/CMakeFiles/abenc_gate.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abenc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
