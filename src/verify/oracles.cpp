#include "verify/oracles.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/markov.h"
#include "core/experiment.h"
#include "gate/circuits.h"
#include "gate/simulator.h"
#include "trace/synthetic.h"
#include "verify/stream_gen.h"

namespace abenc::verify {
namespace {

struct GatePair {
  gate::CodecCircuit encoder;
  gate::CodecCircuit decoder;
};

GatePair BuildGatePair(const std::string& name, const CodecOptions& o) {
  constexpr double kLoad = 0.2;
  if (name == "binary") {
    return {gate::BuildBinaryEncoder(o.width, kLoad),
            gate::BuildBinaryDecoder(o.width, kLoad)};
  }
  if (name == "t0") {
    return {gate::BuildT0Encoder(o.width, o.stride, kLoad),
            gate::BuildT0Decoder(o.width, o.stride, kLoad)};
  }
  if (name == "bus-invert") {
    return {gate::BuildBusInvertEncoder(o.width, kLoad),
            gate::BuildBusInvertDecoder(o.width, kLoad)};
  }
  if (name == "t0-bi") {
    return {gate::BuildT0BIEncoder(o.width, o.stride, kLoad),
            gate::BuildT0BIDecoder(o.width, o.stride, kLoad)};
  }
  if (name == "dual-t0") {
    return {gate::BuildDualT0Encoder(o.width, o.stride, kLoad),
            gate::BuildDualT0Decoder(o.width, o.stride, kLoad)};
  }
  if (name == "dual-t0-bi") {
    return {gate::BuildDualT0BIEncoder(o.width, o.stride, kLoad),
            gate::BuildDualT0BIDecoder(o.width, o.stride, kLoad)};
  }
  throw std::invalid_argument("no gate-level circuit for codec: " + name);
}

std::string HexWord(Word value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

bool SameResult(const EvalResult& a, const EvalResult& b) {
  return a.codec_name == b.codec_name && a.stream_length == b.stream_length &&
         a.transitions == b.transitions &&
         a.peak_transitions == b.peak_transitions &&
         a.in_sequence_percent == b.in_sequence_percent &&
         a.per_line == b.per_line;
}

}  // namespace

std::vector<std::string> GateVerifiableCodecs() {
  return {"binary", "t0", "bus-invert", "t0-bi", "dual-t0", "dual-t0-bi"};
}

std::optional<PropertyFailure> CheckGateEquivalence(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory) {
  const CodecPtr reference = factory(codec_name, options);
  const GatePair pair = BuildGatePair(codec_name, options);
  gate::GateSimulator encoder_sim(pair.encoder.netlist);
  gate::GateSimulator decoder_sim(pair.decoder.netlist);
  const Word mask = LowMask(reference->width());

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Word address = stream[i].address & mask;
    const bool sel = stream[i].sel;
    const BusState behavioural = reference->Encode(address, sel);

    encoder_sim.Cycle(gate::DriveInputs(pair.encoder, address, sel));
    const Word gate_lines = gate::ReadBus(encoder_sim, pair.encoder.data_out);
    const Word gate_redundant =
        gate::ReadBus(encoder_sim, pair.encoder.redundant_out);
    if (gate_lines != behavioural.lines ||
        gate_redundant != behavioural.redundant) {
      return PropertyFailure{
          i, codec_name + ": gate encoder drives lines=" +
                 HexWord(gate_lines) + " red=" + HexWord(gate_redundant) +
                 ", behavioural encodes lines=" + HexWord(behavioural.lines) +
                 " red=" + HexWord(behavioural.redundant) + " at cycle " +
                 std::to_string(i)};
    }

    const Word decoded = reference->Decode(behavioural, sel);
    decoder_sim.Cycle(
        gate::DriveInputs(pair.decoder, gate_lines, sel, gate_redundant));
    const Word gate_decoded = gate::ReadBus(decoder_sim, pair.decoder.data_out);
    if (gate_decoded != decoded || decoded != address) {
      return PropertyFailure{
          i, codec_name + ": gate decoder returns " + HexWord(gate_decoded) +
                 ", behavioural decodes " + HexWord(decoded) +
                 ", address was " + HexWord(address) + " at cycle " +
                 std::to_string(i)};
    }
  }
  return std::nullopt;
}

std::vector<std::string> MarkovVerifiableCodecs() {
  return {"binary", "gray-word", "t0", "bus-invert", "inc-xor"};
}

std::optional<PropertyFailure> CheckMarkovOracle(
    const std::string& codec_name, unsigned width, Word stride,
    double p_in_sequence, std::uint64_t seed, std::size_t length,
    const CodecFactoryFn& factory) {
  CodecOptions options;
  options.width = width;
  options.stride = stride;
  const CodecPtr codec = factory(codec_name, options);

  SyntheticGenerator generator(MixSeed(seed));
  // Jumps uniform over the whole stride-aligned space, matching the
  // closed form's assumption.
  const AddressTrace trace = generator.Markov(length, p_in_sequence, stride,
                                              width, Word{1} << width);
  const double measured =
      Evaluate(*codec, trace.ToBusAccesses(), stride, false)
          .average_transitions_per_cycle();
  const double predicted =
      MarkovExpectedTransitions(codec_name, width, stride, p_in_sequence);
  // The bus-invert closed form is a documented approximation; the others
  // are exact up to Monte-Carlo noise (see analysis/markov.h).
  const double tolerance =
      (codec_name == "bus-invert" ? 0.06 : 0.02) * predicted + 0.05;
  if (std::abs(measured - predicted) > tolerance) {
    std::ostringstream message;
    message << codec_name << ": measured " << measured
            << " transitions/cycle vs Markov prediction " << predicted
            << " (p = " << p_in_sequence << ", tolerance " << tolerance
            << ")";
    return PropertyFailure{length, message.str()};
  }
  return std::nullopt;
}

std::optional<PropertyFailure> CheckParallelIdentity(
    const std::vector<std::string>& codec_names, std::uint64_t seed,
    std::size_t stream_length, unsigned width, Word stride) {
  std::vector<NamedStream> streams;
  for (StreamFamily family : AllStreamFamilies()) {
    streams.push_back(NamedStream{
        FamilyName(family),
        GenerateStream(family, seed, stream_length, width, stride)});
  }
  CodecOptions options;
  options.width = width;
  options.stride = stride;

  RunOptions sequential;
  sequential.parallelism = 1;
  RunOptions parallel;
  parallel.parallelism = 0;  // one worker per hardware thread
  const Comparison a =
      RunComparison(codec_names, streams, options, nullptr, sequential);
  const Comparison b =
      RunComparison(codec_names, streams, options, nullptr, parallel);

  if (a.codec_names != b.codec_names || a.rows.size() != b.rows.size()) {
    return PropertyFailure{0, "parallel run changed the comparison shape"};
  }
  for (std::size_t row = 0; row < a.rows.size(); ++row) {
    if (!SameResult(a.rows[row].binary, b.rows[row].binary)) {
      return PropertyFailure{row, "binary reference differs on stream '" +
                                      a.rows[row].stream_name + "'"};
    }
    for (std::size_t cell = 0; cell < a.rows[row].cells.size(); ++cell) {
      if (!SameResult(a.rows[row].cells[cell].result,
                      b.rows[row].cells[cell].result) ||
          a.rows[row].cells[cell].savings_percent !=
              b.rows[row].cells[cell].savings_percent) {
        return PropertyFailure{
            row, "cell (" + a.rows[row].stream_name + ", " +
                     a.codec_names[cell] +
                     ") is not bit-identical between parallelism settings"};
      }
    }
  }
  return std::nullopt;
}

}  // namespace abenc::verify
