# Empty dependencies file for cpu_fuzz_test.
# This may be replaced when dependencies are built.
