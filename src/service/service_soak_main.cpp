// service_soak: the always-on encoding service under load and faults.
//
// Spins up --sessions simultaneous sessions (codec, stream family and
// fault models rotated deterministically from --seed), pushes every
// stream through the bounded admission path from --clients threads
// (optionally via the zero-copy columnar path, and with mid-stream
// codec renegotiations issued at deterministic thresholds), drains,
// then verifies each session's accounting bit-for-bit against a serial
// EvaluateWithSchedule() of the same stream and reconciles every
// transport delivery (clean/corrected/recovered/degraded must sum to the
// transfer count — no silent corruption).
//
// Exit status: 0 soak passed; 1 verification failures; 2 time budget
// exceeded or bad usage. See EXPERIMENTS.md for the flag reference.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/metrics_json.h"
#include "service/soak.h"

namespace {

using abenc::service::RunSoak;
using abenc::service::SoakOptions;
using abenc::service::SoakOutcome;

[[noreturn]] void Usage(const std::string& error) {
  std::cerr << "service_soak: " << error << "\n"
            << "usage: service_soak [--sessions N] [--length N]\n"
            << "  [--shards N] [--parallelism N] [--clients N] [--seed N]\n"
            << "  [--codec NAME] [--queue-cap N] [--watermark N]\n"
            << "  [--chunk N] [--fault-fraction F]\n"
            << "  [--renegotiate-fraction F] [--columnar-fraction F]\n"
            << "  [--evict-idle N] [--budget N] [--stall-shard]\n"
            << "  [--time-budget-s F] [--metrics PATH]\n";
  std::exit(2);
}

/// `--flag value` and `--flag=value`, mirroring ParseBenchOptions.
bool TakeValue(int argc, char** argv, int& i, const std::string& flag,
               std::string& value) {
  const std::string arg = argv[i];
  if (arg == flag) {
    if (i + 1 >= argc) Usage(flag + " requires a value");
    value = argv[++i];
    return true;
  }
  if (arg.rfind(flag + "=", 0) == 0) {
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions options;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    try {
      if (TakeValue(argc, argv, i, "--sessions", value)) {
        options.sessions = std::stoul(value);
      } else if (TakeValue(argc, argv, i, "--length", value)) {
        options.length = std::stoul(value);
      } else if (TakeValue(argc, argv, i, "--shards", value)) {
        options.shards = static_cast<unsigned>(std::stoul(value));
      } else if (TakeValue(argc, argv, i, "--parallelism", value)) {
        options.parallelism = static_cast<unsigned>(std::stoul(value));
      } else if (TakeValue(argc, argv, i, "--clients", value)) {
        options.clients = static_cast<unsigned>(std::stoul(value));
      } else if (TakeValue(argc, argv, i, "--seed", value)) {
        options.seed = std::stoull(value);
      } else if (TakeValue(argc, argv, i, "--codec", value)) {
        options.codec = value;
      } else if (TakeValue(argc, argv, i, "--queue-cap", value)) {
        options.queue_capacity = std::stoul(value);
      } else if (TakeValue(argc, argv, i, "--watermark", value)) {
        options.slowdown_watermark = std::stoul(value);
      } else if (TakeValue(argc, argv, i, "--chunk", value)) {
        options.chunk = std::stoul(value);
      } else if (TakeValue(argc, argv, i, "--fault-fraction", value)) {
        options.fault_fraction = std::stod(value);
      } else if (TakeValue(argc, argv, i, "--renegotiate-fraction", value)) {
        options.renegotiate_fraction = std::stod(value);
      } else if (TakeValue(argc, argv, i, "--columnar-fraction", value)) {
        options.columnar_fraction = std::stod(value);
      } else if (TakeValue(argc, argv, i, "--evict-idle", value)) {
        options.idle_evict_steps = std::stoull(value);
      } else if (TakeValue(argc, argv, i, "--budget", value)) {
        options.access_budget = std::stoull(value);
      } else if (std::string(argv[i]) == "--stall-shard") {
        options.stall_shard = true;
      } else if (TakeValue(argc, argv, i, "--time-budget-s", value)) {
        options.time_budget_s = std::stod(value);
      } else if (TakeValue(argc, argv, i, "--metrics", value)) {
        metrics_path = value;
      } else {
        Usage(std::string("unknown flag ") + argv[i]);
      }
    } catch (const std::invalid_argument&) {
      Usage(std::string("bad value for ") + argv[i]);
    } catch (const std::out_of_range&) {
      Usage(std::string("bad value for ") + argv[i]);
    }
  }

  std::unique_ptr<abenc::obs::MetricsRegistry> registry;
  std::unique_ptr<abenc::obs::ScopedInstall> install;
  if (!metrics_path.empty()) {
    registry = std::make_unique<abenc::obs::MetricsRegistry>();
    install = std::make_unique<abenc::obs::ScopedInstall>(registry.get());
  }

  const SoakOutcome outcome = RunSoak(options);

  std::cout << "service_soak: " << outcome.sessions << " sessions, "
            << outcome.accesses << " accesses in " << outcome.elapsed_s
            << "s\n"
            << "  transport: " << outcome.corrected_transfers
            << " corrected, " << outcome.recovered_transfers
            << " recovered, " << outcome.degraded_transfers
            << " degraded deliveries\n"
            << "  sessions degraded: " << outcome.degraded_sessions
            << ", evicted: " << outcome.evicted_sessions
            << ", rejected batches (resubmitted): "
            << outcome.rejected_batches
            << ", failovers: " << outcome.failovers << "\n"
            << "  renegotiation: " << outcome.renegotiations
            << " acked switches, " << outcome.renegotiate_refusals
            << " clean refusals; columnar sessions: "
            << outcome.columnar_sessions << "\n";

  if (!metrics_path.empty()) {
    abenc::obs::WriteMetricsFile(metrics_path, *registry);
    std::cout << "  metrics written to " << metrics_path << "\n";
  }

  if (outcome.timed_out) {
    std::cerr << "service_soak: TIME BUDGET EXCEEDED ("
              << options.time_budget_s << "s)\n";
    return 2;
  }
  if (!outcome.failures.empty()) {
    std::cerr << "service_soak: " << outcome.failures.size()
              << " verification failure(s):\n";
    for (const std::string& failure : outcome.failures) {
      std::cerr << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "  bit-identity vs serial EvaluateWithSchedule: OK\n";
  return 0;
}
