// Sparse byte-addressable memory for the instruction-set simulator.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace abenc::sim {

/// Lazily allocated 4 KiB pages over the full 32-bit space. Loads from
/// untouched memory read as zero (matching a zero-filled process image);
/// all accesses must respect natural alignment, as on a real MIPS.
class Memory {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  std::uint8_t LoadByte(std::uint32_t address) const {
    const Page* page = FindPage(address);
    return page == nullptr ? 0 : (*page)[address & (kPageSize - 1)];
  }

  std::uint16_t LoadHalf(std::uint32_t address) const {
    CheckAlignment(address, 2);
    return static_cast<std::uint16_t>(LoadByte(address)) |
           static_cast<std::uint16_t>(LoadByte(address + 1) << 8);
  }

  std::uint32_t LoadWord(std::uint32_t address) const {
    CheckAlignment(address, 4);
    return static_cast<std::uint32_t>(LoadByte(address)) |
           (static_cast<std::uint32_t>(LoadByte(address + 1)) << 8) |
           (static_cast<std::uint32_t>(LoadByte(address + 2)) << 16) |
           (static_cast<std::uint32_t>(LoadByte(address + 3)) << 24);
  }

  void StoreByte(std::uint32_t address, std::uint8_t value) {
    EnsurePage(address)[address & (kPageSize - 1)] = value;
  }

  void StoreHalf(std::uint32_t address, std::uint16_t value) {
    CheckAlignment(address, 2);
    StoreByte(address, static_cast<std::uint8_t>(value));
    StoreByte(address + 1, static_cast<std::uint8_t>(value >> 8));
  }

  void StoreWord(std::uint32_t address, std::uint32_t value) {
    CheckAlignment(address, 4);
    StoreByte(address, static_cast<std::uint8_t>(value));
    StoreByte(address + 1, static_cast<std::uint8_t>(value >> 8));
    StoreByte(address + 2, static_cast<std::uint8_t>(value >> 16));
    StoreByte(address + 3, static_cast<std::uint8_t>(value >> 24));
  }

  std::size_t allocated_pages() const { return pages_.size(); }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  static void CheckAlignment(std::uint32_t address, std::uint32_t size) {
    if (address % size != 0) {
      throw std::runtime_error("unaligned access at address " +
                               std::to_string(address));
    }
  }

  const Page* FindPage(std::uint32_t address) const {
    const auto it = pages_.find(address >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& EnsurePage(std::uint32_t address) {
    std::unique_ptr<Page>& slot = pages_[address >> kPageBits];
    if (slot == nullptr) slot = std::make_unique<Page>();
    return *slot;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace abenc::sim
