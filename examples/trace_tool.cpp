// Command-line trace utility: generate, inspect, convert and encode
// address-trace files in the library's text/binary formats — the glue a
// downstream user needs to run the codecs on traces from their own
// simulator or logic analyser.
//
//   $ ./trace_tool gen markov 0.6 50000 /tmp/t.trace   # synthesise
//   $ ./trace_tool stats /tmp/t.trace                  # statistics
//   $ ./trace_tool convert /tmp/t.trace /tmp/t.btrace  # text <-> binary
//   $ ./trace_tool encode t0 /tmp/t.trace              # savings report
//   $ ./trace_tool capture gzip /tmp/gzip.trace        # from the ISS
#include <iostream>
#include <string>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "sim/program_library.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"

namespace {

using namespace abenc;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  trace_tool gen <sequential|random|markov P|instr|data|mux> "
      "<count> <out-file>\n"
      "  trace_tool capture <benchmark> <out-file>\n"
      "  trace_tool stats <file>\n"
      "  trace_tool convert <in-file> <out-file>\n"
      "  trace_tool encode <codec|all> <file>\n";
  return 2;
}

int Generate(const std::vector<std::string>& args) {
  // args: kind [param] count out
  SyntheticGenerator gen(2024);
  std::size_t i = 0;
  const std::string kind = args[i++];
  double p = 0.5;
  if (kind == "markov") {
    if (args.size() < 4) return Usage();
    p = std::stod(args[i++]);
  }
  if (args.size() - i != 2) return Usage();
  const std::size_t count = std::stoul(args[i]);
  const std::string out = args[i + 1];

  AddressTrace trace;
  if (kind == "sequential") {
    trace = gen.Sequential(count);
  } else if (kind == "random") {
    trace = gen.UniformRandom(count);
  } else if (kind == "markov") {
    trace = gen.Markov(count, p);
  } else if (kind == "instr") {
    trace = gen.InstructionLike(count);
  } else if (kind == "data") {
    trace = gen.DataLike(count);
  } else if (kind == "mux") {
    trace = gen.MultiplexedLike(count);
  } else {
    return Usage();
  }
  SaveTrace(out, trace);
  std::cout << "wrote " << trace.size() << " references to " << out << "\n";
  return 0;
}

int Capture(const std::string& benchmark, const std::string& out) {
  const sim::ProgramTraces traces =
      sim::RunBenchmark(sim::FindBenchmarkProgram(benchmark));
  SaveTrace(out, traces.multiplexed);
  std::cout << "wrote " << traces.multiplexed.size()
            << " multiplexed references from '" << benchmark << "' to "
            << out << "\n";
  return 0;
}

int Stats(const std::string& path) {
  const AddressTrace trace = LoadTrace(path);
  const TraceStats stats = ComputeStats(trace, 32, 4);
  std::cout << path << ":\n"
            << "  references          " << stats.length << "\n"
            << "  unique addresses    " << stats.unique_addresses << "\n"
            << "  in-sequence         "
            << FormatPercent(stats.in_sequence_percent) << "\n"
            << "  repeated address    "
            << FormatPercent(stats.repeated_percent) << "\n"
            << "  avg Hamming dist    "
            << FormatFixed(stats.average_hamming, 3) << "\n"
            << "  address entropy     "
            << FormatFixed(stats.address_entropy_bits, 2) << " bits\n";
  std::cout << "  run-length histogram (top):\n";
  int shown = 0;
  for (auto it = stats.run_length_histogram.rbegin();
       it != stats.run_length_histogram.rend() && shown < 5; ++it, ++shown) {
    std::cout << "    runs of " << it->first << ": " << it->second << "\n";
  }
  std::cout << "  working-set curve (window -> avg distinct):\n";
  for (const auto& [window, distinct] : WorkingSetCurve(trace)) {
    std::cout << "    " << window << " -> " << FormatFixed(distinct, 1)
              << "\n";
  }
  return 0;
}

int Convert(const std::string& in, const std::string& out) {
  const AddressTrace trace = LoadTrace(in);
  SaveTrace(out, trace);
  std::cout << "converted " << trace.size() << " references: " << in
            << " -> " << out << "\n";
  return 0;
}

int Encode(const std::string& codec_name, const std::string& path) {
  const AddressTrace trace = LoadTrace(path);
  const auto accesses = trace.ToBusAccesses();
  CodecOptions options;
  auto binary = MakeCodec("binary", options);
  const EvalResult base = Evaluate(*binary, accesses, options.stride, true);

  TextTable table({"Code", "Transitions", "Avg/cycle", "Savings"});
  const auto add = [&](const std::string& name) {
    auto codec = MakeCodec(name, options);
    const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
    table.AddRow({codec->display_name(), FormatCount(r.transitions),
                  FormatFixed(r.average_transitions_per_cycle(), 3),
                  FormatPercent(SavingsPercent(r.transitions,
                                               base.transitions))});
  };
  if (codec_name == "all") {
    for (const std::string& name : AllCodecNames()) add(name);
  } else {
    add(codec_name);
  }
  std::cout << path << " (" << accesses.size() << " references):\n"
            << table.ToString();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() >= 3 && args[0] == "gen") {
      return Generate({args.begin() + 1, args.end()});
    }
    if (args.size() == 3 && args[0] == "capture") {
      return Capture(args[1], args[2]);
    }
    if (args.size() == 2 && args[0] == "stats") return Stats(args[1]);
    if (args.size() == 3 && args[0] == "convert") {
      return Convert(args[1], args[2]);
    }
    if (args.size() == 3 && args[0] == "encode") {
      return Encode(args[1], args[2]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
