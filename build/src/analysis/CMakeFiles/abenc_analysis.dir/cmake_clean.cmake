file(REMOVE_RECURSE
  "CMakeFiles/abenc_analysis.dir/analytical.cpp.o"
  "CMakeFiles/abenc_analysis.dir/analytical.cpp.o.d"
  "CMakeFiles/abenc_analysis.dir/markov.cpp.o"
  "CMakeFiles/abenc_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/abenc_analysis.dir/memory_mapping.cpp.o"
  "CMakeFiles/abenc_analysis.dir/memory_mapping.cpp.o.d"
  "libabenc_analysis.a"
  "libabenc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abenc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
