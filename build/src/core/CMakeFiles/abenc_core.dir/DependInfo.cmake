
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec_factory.cpp" "src/core/CMakeFiles/abenc_core.dir/codec_factory.cpp.o" "gcc" "src/core/CMakeFiles/abenc_core.dir/codec_factory.cpp.o.d"
  "/root/repo/src/core/coupling.cpp" "src/core/CMakeFiles/abenc_core.dir/coupling.cpp.o" "gcc" "src/core/CMakeFiles/abenc_core.dir/coupling.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/abenc_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/abenc_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/resilience.cpp" "src/core/CMakeFiles/abenc_core.dir/resilience.cpp.o" "gcc" "src/core/CMakeFiles/abenc_core.dir/resilience.cpp.o.d"
  "/root/repo/src/core/stream_evaluator.cpp" "src/core/CMakeFiles/abenc_core.dir/stream_evaluator.cpp.o" "gcc" "src/core/CMakeFiles/abenc_core.dir/stream_evaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
