// Trace persistence: a line-oriented text format (easy to diff and to feed
// from external tools) and a compact binary format for large traces.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace abenc {

/// Text format, one reference per line:
///   <kind> <hex-address>
/// where <kind> is 'I' (instruction) or 'D' (data). Lines starting with
/// '#' and blank lines are ignored. Example:
///   # gzip, multiplexed bus
///   I 0x00400000
///   D 0x10008004
void WriteTextTrace(std::ostream& out, const AddressTrace& trace);
AddressTrace ReadTextTrace(std::istream& in, std::string name = "");

/// Binary format: 8-byte magic "ABENCTR1", uint64 count, then per entry a
/// uint64 address and a uint8 kind. Little-endian, host-order (the format
/// is a cache, not an interchange standard). The reader rejects files
/// with bytes beyond the declared entries — a truncated final record or
/// trailing garbage — with a byte-offset error rather than dropping them.
void WriteBinaryTrace(std::ostream& out, const AddressTrace& trace);
AddressTrace ReadBinaryTrace(std::istream& in, std::string name = "");

/// Classic dinero III "din" format, for interoperability with cache
/// simulator traces: one reference per line, `<label> <hex-address>`,
/// label 0 = data read, 1 = data write, 2 = instruction fetch. Reads and
/// writes lose the read/write distinction on load (the address bus does
/// not carry it); writes emit label 0 for every data reference.
void WriteDineroTrace(std::ostream& out, const AddressTrace& trace);
AddressTrace ReadDineroTrace(std::istream& in, std::string name = "");

/// File helpers; the format is picked by extension (".trace" text,
/// ".btrace" binary, ".din" dinero, ".ctrace" columnar — see
/// trace/mmap_trace.h). Throw std::runtime_error on I/O or parse
/// failure.
void SaveTrace(const std::string& path, const AddressTrace& trace);
AddressTrace LoadTrace(const std::string& path);

}  // namespace abenc
