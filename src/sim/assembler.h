// Two-pass assembler for the MIPS-I subset of sim/isa.h.
//
// Supported syntax (a pragmatic subset of the classic MIPS assembler):
//   - comments:      '#' to end of line
//   - labels:        name:
//   - directives:    .text  .data  .word v,...  .half v,...  .byte v,...
//                    .space n   .align n   .asciiz "str"   .globl name
//   - instructions:  every opcode in sim/isa.h, standard operand order,
//                    loads/stores as  lw $rt, offset($rs)
//   - pseudo-ops:    li la move nop b beqz bnez blt bge bgt ble
//                    mul divq rem neg not subi halt
//     (mul/divq/rem expand through HI/LO; halt expands to BREAK)
//
// Branches are PC-relative to the *following* instruction, jumps use the
// standard 26-bit region form. There are no delay slots (see isa.h).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/isa.h"

namespace abenc::sim {

/// Parse or encoding failure; message includes the 1-based source line.
class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// The loadable image produced by Assemble().
struct AssembledProgram {
  std::uint32_t text_base = kTextBase;
  std::uint32_t data_base = kDataBase;
  std::vector<std::uint32_t> text;  // instruction words
  std::vector<std::uint8_t> data;   // initialised data bytes
  std::map<std::string, std::uint32_t> symbols;

  std::uint32_t entry() const { return text_base; }

  /// Address of a label; throws std::out_of_range for unknown names.
  std::uint32_t Symbol(const std::string& name) const {
    return symbols.at(name);
  }
};

/// Assemble a complete source file. Throws AssemblyError on any problem
/// (unknown mnemonic, bad operand, duplicate or undefined label,
/// immediate/branch out of range).
AssembledProgram Assemble(const std::string& source);

}  // namespace abenc::sim
