// Blocking client for the encoding service's wire protocol: dial +
// HELLO handshake in the constructor, then typed request/reply calls
// that mirror the EncodingService API across the socket.
//
// Error surfaces:
//  - NetError: the transport failed (dial, timeout, peer closed) — the
//    Client is dead; reconnect and ATTACH with the OPEN-issued token to
//    resume sessions.
//  - WireError: the server answered ERROR (status carried in the
//    exception) or sent bytes that do not decode. Request-scoped
//    statuses (kUnknownSession, kBadConfig, kBadToken, kNotAttached)
//    leave the connection usable; fatal ones are followed by a server
//    close.
//
// Backpressure is data, not an exception: Submit() returns the ack
// whose status maps the session's Admission (kSlowDown / kRejected),
// so client pacing loops read it exactly like the in-process soak reads
// Admission.
//
// The raw escape hatches (SendRaw / ReadFrame / ShutdownSend / Abort)
// exist for the net_soak fuzz and disconnect injection — they speak
// bytes, not protocol, on purpose.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/sockets.h"

namespace abenc::net {

struct ClientOptions {
  std::string endpoint = "tcp:127.0.0.1:0";
  /// Socket send/receive timeout for every blocking call. Calls that
  /// can legitimately take long (DrainStats with wait_drained under
  /// load) need this sized to the expected drain time.
  std::chrono::milliseconds io_timeout{10000};
  /// Highest protocol version to offer in HELLO. Set 1 to emulate an
  /// old client: the HELLO is byte-identical to the v1 layout and no
  /// v2 frame or field ever appears on the connection.
  std::uint16_t version_max = kProtocolVersion;
  /// Capability bits to offer (v2+); in force only where the server
  /// grants them back in HELLO_OK.
  std::uint32_t capabilities = kDefaultCapabilities;
};

/// Knobs for the windowed SubmitColumns() streaming loop.
struct StreamSubmitOptions {
  std::size_t chunk = 256;      // accesses per SUBMIT_STREAM frame
  std::size_t window = 8;       // frames in flight before waiting
  /// Request an ack every Nth frame (1 = every frame, i.e. classic
  /// pipelined SUBMITs; larger = streaming bulk mode). The frame that
  /// fills the window and the final frame always request one.
  std::size_t ack_interval = 1;
  /// Lifetime stream index of columns[0]: submission resumes
  /// exactly-once after a disconnect via `start = attach.accepted`.
  std::uint64_t start = 0;
};

struct StreamSubmitResult {
  std::uint64_t accepted = 0;  // server's lifetime admitted count
  std::uint64_t slowdowns = 0;
  std::uint64_t rejections = 0;  // admission + offset-guard rejections
  bool closed = false;  // session input closed before the stream ended
  /// Last non-empty SUBMIT_ACK codec hint seen (kCapRenegotiate).
  std::string last_recommendation;
};

class Client {
 public:
  /// Dials and performs the HELLO handshake; throws NetError on
  /// transport failure and WireError if the server refuses the
  /// handshake (bad magic / no version overlap).
  explicit Client(ClientOptions options);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Frame cap advertised by the server in HELLO_OK.
  std::uint64_t max_frame_bytes() const { return max_frame_bytes_; }

  /// Protocol version negotiated at HELLO.
  std::uint16_t version() const { return version_; }

  /// Capabilities in force on this connection (client ∩ server).
  std::uint32_t capabilities() const { return caps_; }

  OpenReply Open(const OpenRequest& request);
  AttachReply Attach(std::uint64_t session_id, std::uint64_t token);
  SubmitAck Submit(std::uint64_t session_id,
                   std::span<const BusAccess> batch);
  StatsReply DrainStats(std::uint64_t session_id, bool wait_drained);
  CloseReply Close(std::uint64_t session_id);

  /// kCapRenegotiate: request a codec switch pinned to the lifetime
  /// admitted index ("" = let the server policy pick). Throws WireError
  /// on refusal — kRenegotiateRefused / kBadConfig are request-scoped,
  /// the connection stays usable.
  RenegotiateReply Renegotiate(std::uint64_t session_id,
                               const std::string& codec = "");

  /// kCapPipeline: stream `count - options.start` accesses (lifetime
  /// indices [options.start, count)) through windowed SUBMIT_STREAM
  /// frames, keeping up to `window` frames in flight. Rejections rewind
  /// to the server's authoritative count via the offset guard, so the
  /// admitted stream never gaps or duplicates. The columns are read
  /// in place — an mmap-backed `.ctrace` streams without row copies.
  StreamSubmitResult SubmitColumns(std::uint64_t session_id,
                                   const Word* addresses,
                                   const std::uint8_t* sel,
                                   std::uint64_t count,
                                   const StreamSubmitOptions& options);

  // -- raw layer (fuzz + fault injection) --

  /// Send arbitrary bytes as-is (no framing added).
  void SendRaw(std::span<const std::uint8_t> bytes);

  /// Read the next complete frame off the socket; throws NetError on
  /// timeout or close, WireError on framing violations.
  Frame ReadFrame();

  /// Half-close the send side (the server sees EOF after any buffered
  /// bytes — a clean mid-conversation disconnect).
  void ShutdownSend();

  /// Hard-close the socket immediately; every later call throws
  /// NetError. Simulates a crashed client (possibly mid-frame).
  void Abort();

  bool alive() const { return fd_ >= 0; }

 private:
  /// Send one frame, read one frame, demand `expected` (ERROR decodes
  /// into a thrown WireError instead).
  Frame Transact(FrameType type, std::span<const std::uint8_t> payload,
                 FrameType expected);

  int fd_ = -1;
  std::uint64_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  std::uint16_t version_ = kProtocolVersion;
  std::uint32_t caps_ = 0;
  std::vector<std::uint8_t> in_;  // receive accumulator
};

}  // namespace abenc::net
