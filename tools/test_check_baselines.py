#!/usr/bin/env python3
"""Unit tests for the check_baselines.py tolerance logic.

Run directly (`python3 tools/test_check_baselines.py`) or through ctest
(registered as `check_baselines_py_test`). The tool is the arbiter of
the CI bench-regression gate, so its comparison semantics — in
particular behaviour exactly at the 1e-9 tolerance boundary — get their
own tests: the gate must accept a delta of exactly the tolerance and
reject anything strictly above it.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOL = Path(__file__).resolve().parent / "check_baselines.py"


def comparison_doc(savings, in_sequence=62.5):
    return {
        "schema": "abenc.comparison.v1",
        "average_savings": [
            {"codec": codec, "savings_percent": value}
            for codec, value in savings
        ],
        "average_in_sequence_percent": in_sequence,
    }


def net_pipeline_doc(modes):
    return {
        "schema": "abenc.net_pipeline.v1",
        "sessions": 12,
        "length": 6000,
        "modes": [
            {
                "mode": mode,
                "accesses": 72000,
                "transitions": transitions,
                "peak_transitions": 300,
                "switches": switches,
            }
            for mode, transitions, switches in modes
        ],
    }


def protection_doc(transitions):
    return {
        "schema": "abenc.protection.v1",
        "outcomes": [
            {
                "codec": codec,
                "protection": protection,
                "transitions_per_cycle": value,
                "savings_percent": value / 2.0,
            }
            for codec, protection, value in transitions
        ],
    }


class CheckBaselinesTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baselines = root / "baselines"
        self.results = root / "results"
        self.baselines.mkdir()
        self.results.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, name, document):
        (directory / name).write_text(json.dumps(document))

    def run_tool(self, tolerance=None):
        command = [
            sys.executable,
            str(TOOL),
            "--baselines", str(self.baselines),
            "--results", str(self.results),
        ]
        if tolerance is not None:
            command += ["--tolerance", repr(tolerance)]
        return subprocess.run(command, capture_output=True, text=True)

    def test_identical_documents_pass(self):
        doc = comparison_doc([("t0", 35.9), ("bus-invert", 12.5)])
        self.write(self.baselines, "table2.json", doc)
        self.write(self.results, "table2.json", doc)
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK: table2.json", proc.stdout)

    def test_delta_exactly_at_tolerance_passes(self):
        # The comparison is `abs(diff) > tolerance`: a delta of exactly
        # 1e-9 is inside the gate, not a regression. Anchor at 0.0 so
        # the delta is exactly representable in binary floating point.
        self.write(self.baselines, "t.json", comparison_doc([("t0", 0.0)]))
        self.write(self.results, "t.json", comparison_doc([("t0", 1e-9)]))
        proc = self.run_tool(tolerance=1e-9)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_delta_just_above_tolerance_fails(self):
        self.write(self.baselines, "t.json", comparison_doc([("t0", 0.0)]))
        self.write(self.results, "t.json", comparison_doc([("t0", 2e-9)]))
        proc = self.run_tool(tolerance=1e-9)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("average savings for 't0' deviates", proc.stderr)

    def test_in_sequence_percent_is_gated_too(self):
        self.write(self.baselines, "t.json",
                   comparison_doc([("t0", 35.0)], in_sequence=60.0))
        self.write(self.results, "t.json",
                   comparison_doc([("t0", 35.0)], in_sequence=60.1))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("in-sequence percent deviates", proc.stderr)

    def test_missing_result_file_fails(self):
        self.write(self.baselines, "t.json", comparison_doc([("t0", 35.0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no result file", proc.stderr)

    def test_codec_list_change_fails(self):
        self.write(self.baselines, "t.json",
                   comparison_doc([("t0", 35.0), ("gray", 10.0)]))
        self.write(self.results, "t.json", comparison_doc([("t0", 35.0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("codec list", proc.stderr)

    def test_schema_mismatch_fails(self):
        self.write(self.baselines, "t.json", comparison_doc([("t0", 35.0)]))
        result = comparison_doc([("t0", 35.0)])
        result["schema"] = "abenc.comparison.v2"
        self.write(self.results, "t.json", result)
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("schema", proc.stderr)

    def test_protection_schema_boundary(self):
        base = protection_doc([("t0", "parity", 0.0)])
        self.write(self.baselines, "p.json", base)
        self.write(self.results, "p.json",
                   protection_doc([("t0", "parity", 1e-9)]))
        self.assertEqual(self.run_tool(tolerance=1e-9).returncode, 0)
        self.write(self.results, "p.json",
                   protection_doc([("t0", "parity", 2e-9)]))
        proc = self.run_tool(tolerance=1e-9)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("transitions_per_cycle", proc.stderr)

    def test_protection_grid_change_fails(self):
        self.write(self.baselines, "p.json",
                   protection_doc([("t0", "parity", 8.0)]))
        self.write(self.results, "p.json",
                   protection_doc([("t0", "hamming", 8.0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("outcome grid changed", proc.stderr)

    def test_net_pipeline_identical_documents_pass(self):
        doc = net_pipeline_doc([("submit", 484339, 0),
                                ("pipelined", 511533, 12)])
        self.write(self.baselines, "net.json", doc)
        self.write(self.results, "net.json", doc)
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK: net.json", proc.stdout)

    def test_net_pipeline_transition_drift_fails(self):
        self.write(self.baselines, "net.json",
                   net_pipeline_doc([("submit", 484339, 0)]))
        self.write(self.results, "net.json",
                   net_pipeline_doc([("submit", 484340, 0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("transitions", proc.stderr)

    def test_net_pipeline_mode_list_change_fails(self):
        self.write(self.baselines, "net.json",
                   net_pipeline_doc([("submit", 484339, 0)]))
        self.write(self.results, "net.json",
                   net_pipeline_doc([("mmap-stream", 484339, 0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mode list", proc.stderr)

    def test_net_pipeline_switch_count_is_gated(self):
        self.write(self.baselines, "net.json",
                   net_pipeline_doc([("pipelined", 511533, 12)]))
        self.write(self.results, "net.json",
                   net_pipeline_doc([("pipelined", 511533, 11)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("switches", proc.stderr)

    def test_empty_baseline_directory_is_a_usage_error(self):
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no baselines found", proc.stderr)

    def test_one_failure_does_not_mask_other_documents(self):
        good = comparison_doc([("t0", 35.0)])
        self.write(self.baselines, "a.json", good)
        self.write(self.results, "a.json", good)
        self.write(self.baselines, "b.json", comparison_doc([("t0", 1.0)]))
        self.write(self.results, "b.json", comparison_doc([("t0", 2.0)]))
        proc = self.run_tool()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("OK: a.json", proc.stdout)
        self.assertIn("b.json", proc.stderr)


if __name__ == "__main__":
    unittest.main()
