file(REMOVE_RECURSE
  "libabenc_report.a"
)
