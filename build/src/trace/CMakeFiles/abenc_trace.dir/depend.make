# Empty dependencies file for abenc_trace.
# This may be replaced when dependencies are built.
