#include "core/experiment.h"

#include <cstddef>
#include <exception>
#include <future>
#include <utility>

#include "core/thread_pool.h"
#include "obs/metrics.h"

namespace abenc {
namespace {

// Publishes one evaluated cell into the installed registry: wall time
// (overall and per codec), words and the codec's transition total.
// Purely observational — call only when a registry is installed.
void RecordCellMetrics(obs::MetricsRegistry& registry,
                       const std::string& codec_name,
                       const EvalResult& result, double elapsed_seconds) {
  registry.GetHistogram("experiment.cell_seconds", obs::DefaultLatencyBuckets())
      .Observe(elapsed_seconds);
  registry
      .GetHistogram("experiment.codec." + codec_name + ".cell_seconds",
                    obs::DefaultLatencyBuckets())
      .Observe(elapsed_seconds);
  registry.GetCounter("experiment.cells").Increment();
  registry.GetCounter("experiment.words").Increment(result.stream_length);
  registry.GetCounter("experiment.codec." + codec_name + ".words")
      .Increment(result.stream_length);
  registry.GetCounter("experiment.codec." + codec_name + ".transitions")
      .Increment(static_cast<std::uint64_t>(result.transitions));
}

// Runs one codec over one stream, decode-verified, honouring the
// engine's path selection: the batched chunked path by default, the
// legacy per-word loop under RunOptions::per_word. Both are
// bit-identical by the EncodeBlock contract.
EvalResult EvaluateStream(Codec& codec, const NamedStream& stream,
                          const CodecOptions& options,
                          const RunOptions& run) {
  if (run.per_word) {
    if (stream.source) {
      // The legacy loop wants a contiguous stream; materialize one
      // copy locally (this is exactly the allocation the batched path
      // exists to avoid).
      std::vector<BusAccess> accesses(stream.source->size());
      stream.source->Read(0, accesses);
      return Evaluate(codec, accesses, options.stride,
                      /*verify_decode=*/true);
    }
    return Evaluate(codec, stream.accesses, options.stride,
                    /*verify_decode=*/true);
  }
  if (stream.source) {
    return EvaluateBatched(codec, *stream.source, options.stride,
                           /*verify_decode=*/true, run.chunk_size);
  }
  return EvaluateBatched(codec, stream.accesses, options.stride,
                         /*verify_decode=*/true, run.chunk_size);
}

// One (stream, codec) cell from codec reset, decode-verified. Shared by
// the sequential and parallel paths so both compute bit-identical cells.
ComparisonCell EvaluateCell(
    const std::string& codec_name, const NamedStream& stream,
    const CodecOptions& options,
    const std::function<void(const std::string&, CodecOptions&)>& configure,
    const RunOptions& run) {
  CodecOptions codec_options = options;
  if (configure) configure(codec_name, codec_options);
  auto codec = MakeCodec(codec_name, codec_options);
  ComparisonCell cell;
  obs::MetricsRegistry* registry = obs::Installed();
  const double start = registry ? obs::MonotonicSeconds() : 0.0;
  cell.result = EvaluateStream(*codec, stream, options, run);
  if (registry) {
    RecordCellMetrics(*registry, codec_name, cell.result,
                      obs::MonotonicSeconds() - start);
  }
  return cell;
}

EvalResult EvaluateBinaryReference(const NamedStream& stream,
                                   const CodecOptions& options,
                                   const RunOptions& run) {
  auto binary = MakeCodec("binary", options);
  obs::MetricsRegistry* registry = obs::Installed();
  const double start = registry ? obs::MonotonicSeconds() : 0.0;
  EvalResult result = EvaluateStream(*binary, stream, options, run);
  if (registry) {
    RecordCellMetrics(*registry, "binary", result,
                      obs::MonotonicSeconds() - start);
  }
  return result;
}

Comparison RunComparisonSequential(
    const std::vector<std::string>& codec_names,
    const std::vector<NamedStream>& streams, const CodecOptions& options,
    const std::function<void(const std::string&, CodecOptions&)>& configure,
    const RunOptions& run) {
  Comparison comparison;
  comparison.codec_names = codec_names;
  comparison.rows.reserve(streams.size());
  for (const NamedStream& stream : streams) {
    ComparisonRow row;
    row.stream_name = stream.name;
    row.binary = EvaluateBinaryReference(stream, options, run);
    for (const std::string& name : codec_names) {
      ComparisonCell cell =
          EvaluateCell(name, stream, options, configure, run);
      cell.savings_percent =
          SavingsPercent(cell.result.transitions, row.binary.transitions);
      row.cells.push_back(std::move(cell));
    }
    comparison.rows.push_back(std::move(row));
  }
  return comparison;
}

Comparison RunComparisonParallel(
    const std::vector<std::string>& codec_names,
    const std::vector<NamedStream>& streams, const CodecOptions& options,
    const std::function<void(const std::string&, CodecOptions&)>& configure,
    const RunOptions& run, unsigned parallelism) {
  Comparison comparison;
  comparison.codec_names = codec_names;
  comparison.rows.resize(streams.size());

  // Futures are collected in deterministic submission order — binary
  // reference then cells, stream-major — and reduced in that same
  // order below, so the first failure in grid order wins no matter
  // which worker hit it first.
  // Queue wait (submit-to-start latency per cell) is only measured when
  // a registry is installed; the histogram pointer doubles as the flag
  // so the disabled path takes no clock reads inside the workers.
  obs::MetricsRegistry* registry = obs::Installed();
  obs::Histogram* queue_wait =
      registry ? &registry->GetHistogram("experiment.queue_wait_seconds",
                                         obs::DefaultLatencyBuckets())
               : nullptr;
  auto observe_wait = [queue_wait](double submitted) {
    if (queue_wait) {
      queue_wait->Observe(obs::MonotonicSeconds() - submitted);
    }
  };

  std::vector<std::future<EvalResult>> binary_futures;
  std::vector<std::future<ComparisonCell>> cell_futures;
  binary_futures.reserve(streams.size());
  cell_futures.reserve(streams.size() * codec_names.size());
  {
    ThreadPool pool(parallelism);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      const NamedStream* stream = &streams[s];
      const double submitted = queue_wait ? obs::MonotonicSeconds() : 0.0;
      binary_futures.push_back(
          pool.Submit([stream, &options, &run, observe_wait, submitted]() {
            observe_wait(submitted);
            return EvaluateBinaryReference(*stream, options, run);
          }));
      for (std::size_t c = 0; c < codec_names.size(); ++c) {
        const std::string* name = &codec_names[c];
        const double cell_submitted =
            queue_wait ? obs::MonotonicSeconds() : 0.0;
        cell_futures.push_back(
            pool.Submit([name, stream, &options, &configure, &run,
                         observe_wait, cell_submitted]() {
              observe_wait(cell_submitted);
              return EvaluateCell(*name, *stream, options, configure, run);
            }));
      }
    }
    // The pool destructor drains the queue: by the end of this block
    // every task has run, so every future below is ready and the
    // captured references above are no longer in use.
  }

  std::exception_ptr first_failure;
  auto harvest = [&first_failure](auto& future, auto& destination) {
    try {
      destination = future.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  };

  std::size_t cell_index = 0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    ComparisonRow& row = comparison.rows[s];
    row.stream_name = streams[s].name;
    harvest(binary_futures[s], row.binary);
    row.cells.resize(codec_names.size());
    for (std::size_t c = 0; c < codec_names.size(); ++c, ++cell_index) {
      harvest(cell_futures[cell_index], row.cells[c]);
      row.cells[c].savings_percent = SavingsPercent(
          row.cells[c].result.transitions, row.binary.transitions);
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
  return comparison;
}

}  // namespace

std::vector<double> Comparison::average_savings() const {
  std::vector<double> averages(codec_names.size(), 0.0);
  if (rows.empty()) return averages;
  for (const ComparisonRow& row : rows) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      averages[c] += row.cells[c].savings_percent;
    }
  }
  for (double& a : averages) a /= static_cast<double>(rows.size());
  return averages;
}

double Comparison::average_in_sequence_percent() const {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const ComparisonRow& row : rows) {
    sum += row.binary.in_sequence_percent;
  }
  return sum / static_cast<double>(rows.size());
}

Comparison RunComparison(
    const std::vector<std::string>& codec_names,
    const std::vector<NamedStream>& streams, const CodecOptions& options,
    const std::function<void(const std::string&, CodecOptions&)>& configure,
    const RunOptions& run) {
  const unsigned parallelism =
      run.parallelism == 0 ? ThreadPool::DefaultParallelism()
                           : run.parallelism;
  obs::MetricsRegistry* registry = obs::Installed();
  const double start = registry ? obs::MonotonicSeconds() : 0.0;
  Comparison comparison =
      (parallelism <= 1 || streams.empty())
          ? RunComparisonSequential(codec_names, streams, options, configure,
                                    run)
          : RunComparisonParallel(codec_names, streams, options, configure,
                                  run, parallelism);
  if (registry) {
    const double elapsed = obs::MonotonicSeconds() - start;
    std::size_t words = 0;  // every evaluated access, reference included
    for (const NamedStream& stream : streams) {
      words += stream.size() * (codec_names.size() + 1);
    }
    registry->GetCounter("experiment.runs").Increment();
    registry->GetGauge("experiment.run_seconds").Add(elapsed);
    if (elapsed > 0.0) {
      registry->GetGauge("experiment.words_per_second")
          .Set(static_cast<double>(words) / elapsed);
    }
  }
  return comparison;
}

}  // namespace abenc
