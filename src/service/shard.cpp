#include "service/shard.h"

#include <utility>

namespace abenc::service {

void Shard::Add(std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.push_back(std::move(session));
}

std::vector<std::shared_ptr<Session>> Shard::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> taken;
  taken.swap(sessions_);
  return taken;
}

void Shard::SetStallHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_hook_ = std::move(hook);
}

bool Shard::Step() {
  if (dead()) return false;
  std::function<void()> hook;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hook = stall_hook_;
    sessions = sessions_;
  }
  if (hook) hook();       // injected fault: a wedged shard hangs here
  if (dead()) return false;  // failed over while we were stuck

  bool worked = false;
  for (const std::shared_ptr<Session>& session : sessions) {
    if (dead()) break;
    const std::size_t processed = session->DrainStep(policy_.drain_batch);
    worked |= processed != 0;
    // Eviction policy: bounded state for quiet or over-budget sessions.
    // Evict() itself re-checks eligibility (active, queue empty) under
    // the session's locks, so these are cheap pre-filters.
    if (session->OverBudget()) {
      session->Evict();
    } else if (processed == 0 && policy_.idle_evict_steps != 0 &&
               session->idle_steps() >= policy_.idle_evict_steps &&
               session->state() == SessionState::kActive) {
      session->Evict();
    }
  }
  Bump(metrics_->shard_steps);
  heartbeat_.fetch_add(1, std::memory_order_release);
  return worked;
}

std::size_t Shard::pending() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions = sessions_;
  }
  std::size_t total = 0;
  for (const std::shared_ptr<Session>& session : sessions) {
    total += session->queued();
  }
  return total;
}

}  // namespace abenc::service
