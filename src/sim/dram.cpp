#include "sim/dram.h"

#include "obs/metrics.h"

namespace abenc::sim {

AddressTrace ToDramBusTrace(const AddressTrace& accesses,
                            const DramConfig& config, DramBusStats* stats) {
  AddressTrace bus(accesses.name());
  DramBusStats local;
  bool row_open = false;
  Word open_row = 0;
  for (const TraceEntry& e : accesses) {
    const Word word_address = e.address >> 2;
    const Word column = word_address & LowMask(config.column_bits);
    const Word row =
        (word_address >> config.column_bits) & LowMask(config.row_bits);
    ++local.accesses;
    if (!config.open_page || !row_open || row != open_row) {
      bus.Append(row, AccessKind::kInstruction);  // RAS cycle
      ++local.row_cycles;
      row_open = true;
      open_row = row;
    }
    bus.Append(column, AccessKind::kData);  // CAS cycle
    ++local.column_cycles;
  }
  if (stats != nullptr) *stats = local;
  // Row-buffer behaviour for the installed registry: a page hit is an
  // access that reused the open row (no RAS cycle needed).
  if (obs::Installed() != nullptr) {
    obs::Count("sim.dram.accesses", local.accesses);
    obs::Count("sim.dram.row_cycles", local.row_cycles);
    obs::Count("sim.dram.column_cycles", local.column_cycles);
    obs::Count("sim.dram.page_hits", local.accesses - local.row_cycles);
  }
  return bus;
}

}  // namespace abenc::sim
