#include "sim/cache.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace abenc::sim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (!IsPowerOfTwo(config.line_bytes) || !IsPowerOfTwo(config.sets) ||
      !IsPowerOfTwo(config.ways)) {
    throw std::invalid_argument(
        "cache geometry fields must be powers of two");
  }
  line_shift_ = Log2(config.line_bytes);
  set_mask_ = config.sets - 1;
  ways_.assign(static_cast<std::size_t>(config.sets) * config.ways, Way{});
}

Cache::AccessResult Cache::Access(std::uint32_t address, bool is_store) {
  ++clock_;
  ++stats_.accesses;
  const std::uint32_t line = address >> line_shift_;
  const std::uint32_t set = line & set_mask_;
  const std::uint32_t tag = line >> 0;  // full line number as tag (simple)
  Way* const base = &ways_[static_cast<std::size_t>(set) * config_.ways];

  AccessResult result;
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      way.dirty = way.dirty || is_store;
      result.hit = true;
      return result;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }

  ++stats_.misses;
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    result.writeback = true;
    result.victim_line = victim->tag << line_shift_;
  }
  victim->valid = true;
  victim->dirty = is_store;
  victim->tag = tag;
  victim->last_use = clock_;
  return result;
}

void Cache::Reset() {
  ways_.assign(ways_.size(), Way{});
  clock_ = 0;
  stats_ = CacheStats{};
}

void Cache::PublishMetrics(const std::string& label) const {
  if (obs::Installed() == nullptr) return;
  const std::string prefix = "sim.cache." + label + ".";
  obs::Count(prefix + "hits", stats_.accesses - stats_.misses);
  obs::Count(prefix + "misses", stats_.misses);
  obs::Count(prefix + "writebacks", stats_.writebacks);
}

CacheFilteredMonitor::CacheFilteredMonitor(const CacheConfig& icache_config,
                                           const CacheConfig& dcache_config,
                                           std::string program_name)
    : icache_(icache_config), dcache_(dcache_config) {
  instruction_.set_name(program_name);
  data_.set_name(program_name);
  multiplexed_.set_name(std::move(program_name));
}

void CacheFilteredMonitor::OnInstructionFetch(std::uint32_t address) {
  const Cache::AccessResult result = icache_.Access(address, false);
  if (!result.hit) {
    const std::uint32_t line = icache_.LineAddress(address);
    instruction_.Append(line, AccessKind::kInstruction);
    multiplexed_.Append(line, AccessKind::kInstruction);
  }
  // Instruction lines are never dirty (no self-modifying code here).
}

void CacheFilteredMonitor::OnDataAccess(std::uint32_t address,
                                        bool is_store) {
  const Cache::AccessResult result = dcache_.Access(address, is_store);
  if (!result.hit) {
    const std::uint32_t line = dcache_.LineAddress(address);
    data_.Append(line, AccessKind::kData);
    multiplexed_.Append(line, AccessKind::kData);
  }
  if (result.writeback) {
    data_.Append(result.victim_line, AccessKind::kData);
    multiplexed_.Append(result.victim_line, AccessKind::kData);
  }
}

}  // namespace abenc::sim
