// Tests for the hardware hand-off paths: Verilog export and VCD dumps.
#include <gtest/gtest.h>

#include <sstream>

#include "gate/circuits.h"
#include "gate/simulator.h"
#include "gate/vcd.h"
#include "gate/verilog.h"

namespace abenc::gate {
namespace {

TEST(VerilogTest, EmitsModuleWithPorts) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x = nl.Add(CellKind::kXor2, a, b);
  nl.MarkOutput(x, "y", 0.1);

  const std::string v = ToVerilog(nl, "xor_cell");
  EXPECT_NE(v.find("module xor_cell"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("input wire b"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogTest, FlopsGetResetAndClockedAssignments) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId q = nl.AddFlop("state");
  nl.ConnectFlop(q, a);
  nl.MarkOutput(q, "out", 0.1);

  const std::string v = ToVerilog(nl, "reg1");
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("state <= 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("state <= a;"), std::string::npos);
  EXPECT_NE(v.find("assign out = state;"), std::string::npos);
}

TEST(VerilogTest, ConstantsRenderAsLiterals) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId g = nl.Add(CellKind::kAnd2, a, nl.Const(true));
  nl.MarkOutput(g, "y", 0.1);
  const std::string v = ToVerilog(nl, "m");
  EXPECT_NE(v.find("1'b1"), std::string::npos);
}

TEST(VerilogTest, InvalidNamesAreSanitised) {
  Netlist nl;
  const NetId a = nl.AddInput("a[0]");  // not a legal identifier
  nl.MarkOutput(nl.Add(CellKind::kBuf, a), "y", 0.1);
  const std::string v = ToVerilog(nl, "m");
  EXPECT_EQ(v.find("a[0]"), std::string::npos);
}

TEST(VerilogTest, FullEncoderExportsWithoutDuplicateNames) {
  const CodecCircuit enc = BuildDualT0BIEncoder(32, 4, 0.1);
  const std::string v = ToVerilog(enc.netlist, "dual_t0bi_encoder");
  // Every output port of the paper's encoder must appear.
  EXPECT_NE(v.find("output wire B31"), std::string::npos);
  EXPECT_NE(v.find("output wire Br0"), std::string::npos);
  EXPECT_NE(v.find("input wire SEL"), std::string::npos);
  // A smoke-parse: assigns must equal gate count.
  std::size_t assigns = 0;
  for (std::size_t pos = v.find("assign"); pos != std::string::npos;
       pos = v.find("assign", pos + 1)) {
    ++assigns;
  }
  EXPECT_GE(assigns, enc.netlist.gate_count());
}

TEST(VerilogTestbenchTest, EmitsSelfCheckingVectors) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId inv = nl.Add(CellKind::kInv, a);
  nl.MarkOutput(inv, "y", 0.1);

  GateSimulator sim(nl);
  std::vector<TestbenchVector> vectors;
  for (bool bit : {true, false, true}) {
    sim.Cycle({{a, bit}});
    TestbenchVector v;
    v.inputs.push_back({a, bit});
    v.expected.push_back({"y", sim.Value(inv)});
    vectors.push_back(std::move(v));
  }

  std::ostringstream out;
  WriteVerilogTestbench(out, nl, "inv_cell", vectors);
  const std::string tb = out.str();
  EXPECT_NE(tb.find("module inv_cell_tb;"), std::string::npos);
  EXPECT_NE(tb.find("inv_cell dut("), std::string::npos);
  EXPECT_NE(tb.find("check(1'b0, y"), std::string::npos);  // a=1 -> y=0
  EXPECT_NE(tb.find("check(1'b1, y"), std::string::npos);  // a=0 -> y=1
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // One check per vector.
  std::size_t checks = 0;
  for (std::size_t pos = tb.find("    check("); pos != std::string::npos;
       pos = tb.find("    check(", pos + 1)) {
    ++checks;
  }
  EXPECT_EQ(checks, 3u);
}

TEST(VcdTest, DumpsHeaderAndChanges) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId inv = nl.Add(CellKind::kInv, a);
  GateSimulator sim(nl);
  VcdWriter vcd(nl, {a, inv}, "top");
  for (int i = 0; i < 4; ++i) {
    sim.Cycle({{a, i % 2 == 1}});
    vcd.Sample(sim);
  }
  std::ostringstream out;
  vcd.Write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  // a toggles at t=1,2,3 -> three change records for id '!'.
  EXPECT_NE(text.find("#1\n1!"), std::string::npos);
  EXPECT_EQ(vcd.samples(), 4u);
}

TEST(VcdTest, OnlyChangesAreRecorded) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  GateSimulator sim(nl);
  VcdWriter vcd(nl, {a});
  for (int i = 0; i < 10; ++i) {
    sim.Cycle({{a, false}});
    vcd.Sample(sim);
  }
  std::ostringstream out;
  vcd.Write(out);
  // Initial 0 at t=0, then silence.
  EXPECT_EQ(out.str().find("#1\n"), std::string::npos);
}

TEST(VcdTest, RejectsUnknownNets) {
  Netlist nl;
  EXPECT_THROW(VcdWriter(nl, {12345}), std::invalid_argument);
}

}  // namespace
}  // namespace abenc::gate
