// Width-generic SECDED over the coded bus lines.
//
// An extended Hamming code in the style of the DRAM industry's
// Hamming(72,64): r check bits chosen as the smallest r with
// 2^r >= m + r + 1 over the m message bits (the inner code's data +
// redundant lines), plus one overall parity bit. Single line errors —
// anywhere, including on the check lines — are located and corrected;
// double errors are detected and flagged uncorrectable. For the paper's
// 32-bit T0 frame (33 message bits) this costs 7 check lines; for a
// 64-bit binary frame, 8 — exactly the (72,64) geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace abenc {

/// What the receiver-side check found in one frame.
enum class SecdedOutcome : unsigned char {
  kClean,            // syndrome zero, parity agrees
  kCorrectedMessage, // single error on a message line, fixed in place
  kCorrectedCheck,   // single error on a check line, message untouched
  kDoubleError,      // two errors detected; frame is uncorrectable
};

class SecdedCode {
 public:
  /// `data_lines` + `redundant_lines` define the message: message bit i is
  /// data line i for i < data_lines, else redundant line i - data_lines.
  /// Supports up to 120 message bits (check bits must fit one Word).
  SecdedCode(unsigned data_lines, unsigned redundant_lines);

  unsigned message_bits() const { return message_bits_; }
  /// Hamming bits + the overall parity bit.
  unsigned check_lines() const { return hamming_bits_ + 1; }

  /// Check-line value the transmitter drives alongside `coded`.
  Word ComputeCheck(const BusState& coded) const;

  /// Receiver side: verify `coded`/`check` as sampled off the wire and
  /// repair a single-line error in place.
  SecdedOutcome CorrectInPlace(BusState& coded, Word& check) const;

 private:
  void FlipMessageBit(BusState& coded, unsigned i) const;
  Word Syndrome(const BusState& coded, Word check) const;
  bool OverallParity(const BusState& coded, Word check) const;

  unsigned data_lines_;
  unsigned redundant_lines_;
  unsigned message_bits_;
  unsigned hamming_bits_;  // r
  // Codeword position (1-based, powers of two are check bits) of each
  // message bit, and the inverse map for correction.
  std::vector<std::uint32_t> position_of_message_;
  std::vector<std::int32_t> message_at_position_;  // -1 at check positions
  // Parity-group masks over the message words: syndrome bit j is the
  // parity of (lines & group_lines_[j], redundant & group_redundant_[j])
  // plus check bit j. Keeps the per-cycle check at a few popcounts.
  std::vector<Word> group_lines_;
  std::vector<Word> group_redundant_;
};

/// One even-parity line over the coded bus lines: detection only (any odd
/// number of flipped lines), no correction. The cheapest protection layer.
Word ComputeParity(const BusState& coded, unsigned data_lines,
                   unsigned redundant_lines);

}  // namespace abenc
