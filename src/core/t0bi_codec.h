// T0_BI mixed code (Section 3.1 of the paper), Eq. 6/7.
#pragma once

#include "core/codec.h"

namespace abenc {

/// Combines T0 and bus-invert with two redundant lines, INC (bit 0) and
/// INV (bit 1). In-sequence addresses freeze the bus exactly as in T0;
/// out-of-sequence addresses fall back to bus-invert with the majority
/// threshold widened to the full N+2 encoded lines:
///
///   (B,INC,INV) = (B(t-1), 1, 0)  if b(t) = b(t-1) + S
///                 (b(t),   0, 0)  if not seq and H(t) <= (N+2)/2
///                 (~b(t),  0, 1)  if not seq and H(t) >  (N+2)/2
///
/// H(t) = Hamming( B(t-1)|INC(t-1)|INV(t-1) , b(t)|0|0 ).
///
/// Intended for unified (single) address buses carrying both instruction
/// and data references, e.g. towards an external unified L2 cache.
class T0BICodec final : public Codec {
 public:
  explicit T0BICodec(unsigned width, Word stride = 4)
      : Codec(width), stride_(stride) {
    if (!IsPowerOfTwo(stride)) {
      throw CodecConfigError("T0_BI stride must be a power of two");
    }
  }

  std::string name() const override { return "t0-bi"; }
  std::string display_name() const override { return "T0_BI"; }
  unsigned redundant_lines() const override { return 2; }

  static constexpr Word kIncBit = 1;  // redundant bit 0
  static constexpr Word kInvBit = 2;  // redundant bit 1

  BusState Encode(Word address, bool /*sel*/) override {
    const Word b = Mask(address);
    BusState out;
    if (enc_has_prev_ && b == Mask(enc_prev_addr_ + stride_)) {
      out = BusState{enc_prev_bus_.lines, kIncBit};
    } else {
      const int h = HammingDistance(enc_prev_bus_.lines, b, width()) +
                    PopCount(enc_prev_bus_.redundant & (kIncBit | kInvBit));
      if (2 * h > static_cast<int>(width()) + 2) {
        out = BusState{Mask(~b), kInvBit};
      } else {
        out = BusState{b, 0};
      }
    }
    enc_prev_addr_ = b;
    enc_prev_bus_ = out;
    enc_has_prev_ = true;
    return out;
  }

  Word Decode(const BusState& bus, bool /*sel*/) override {
    Word b;
    if (bus.redundant & kIncBit) {
      b = Mask(dec_prev_addr_ + stride_);
    } else if (bus.redundant & kInvBit) {
      b = Mask(~bus.lines);
    } else {
      b = Mask(bus.lines);
    }
    dec_prev_addr_ = b;
    return b;
  }

  void Reset() override {
    enc_has_prev_ = false;
    enc_prev_addr_ = 0;
    enc_prev_bus_ = BusState{};
    dec_prev_addr_ = 0;
  }

  Word stride() const { return stride_; }

 private:
  Word stride_;
  bool enc_has_prev_ = false;
  Word enc_prev_addr_ = 0;
  BusState enc_prev_bus_;
  Word dec_prev_addr_ = 0;
};

}  // namespace abenc
