// Semantic tests for the extension codes (offset, INC-XOR, working-zone,
// Beach) beyond the round-trip sweeps of codec_test.cpp.
#include <gtest/gtest.h>

#include <random>

#include "core/beach_codec.h"
#include "core/inc_xor_codec.h"
#include "core/mtf_codec.h"
#include "core/offset_codec.h"
#include "core/stream_evaluator.h"
#include "core/working_zone_codec.h"
#include "trace/synthetic.h"

namespace abenc {
namespace {

// ---------------------------------------------------------------------------
// Offset
// ---------------------------------------------------------------------------

TEST(OffsetCodecTest, ConstantStrideFreezesTheBus) {
  OffsetCodec codec(32);
  TransitionCounter counter(32, 0);
  for (Word a = 0x1000; a < 0x2000; a += 4) {
    counter.Observe(codec.Encode(a, true));
  }
  // First delta is 0x1000, second is 4, then the bus holds 4 forever.
  const BusState first{0x1000, 0};
  const BusState second{4, 0};
  EXPECT_EQ(counter.total(),
            PopCount(first.lines) + PopCount(first.lines ^ second.lines));
}

TEST(OffsetCodecTest, DecoderAccumulates) {
  OffsetCodec codec(16);
  for (Word a : {Word{10}, Word{14}, Word{5}, Word{0xFFFF}, Word{3}}) {
    const BusState s = codec.Encode(a, true);
    EXPECT_EQ(codec.Decode(s, true), a);
  }
}

// ---------------------------------------------------------------------------
// INC-XOR
// ---------------------------------------------------------------------------

TEST(IncXorCodecTest, SequentialRunIsCompletelyQuiet) {
  IncXorCodec codec(32, 4);
  TransitionCounter counter(32, 0, /*skip_first=*/true);
  for (Word a = 0x40000; a < 0x42000; a += 4) {
    counter.Observe(codec.Encode(a, true));
  }
  // After the first pattern, predictions are perfect: zero toggles, with
  // no redundant line at all (better than T0 on this metric).
  EXPECT_EQ(counter.total(), 0);
}

TEST(IncXorCodecTest, MispredictionCostsHammingToPrediction) {
  IncXorCodec codec(16, 4);
  codec.Encode(0x100, true);
  const BusState before = codec.Encode(0x104, true);  // predicted
  const BusState after = codec.Encode(0x200, true);   // jump
  EXPECT_EQ(PopCount(before.lines ^ after.lines),
            HammingDistance(0x200, 0x104 + 4, 16));
}

TEST(IncXorCodecTest, RejectsBadStride) {
  EXPECT_THROW(IncXorCodec(32, 6), CodecConfigError);
}

// ---------------------------------------------------------------------------
// Working-zone
// ---------------------------------------------------------------------------

TEST(WorkingZoneCodecTest, HitsFreezeTheUpperLines) {
  WorkingZoneCodec codec(32, 4, 8);
  codec.Encode(0x12345000, true);  // miss, seeds a zone
  const BusState hit = codec.Encode(0x12345010, true);  // within the window
  EXPECT_EQ(hit.redundant & 1, 1u);
  // Upper lines frozen at the previous bus value.
  EXPECT_EQ(hit.lines >> 10, Word{0x12345000} >> 10);
}

TEST(WorkingZoneCodecTest, InterleavedZonesStayHits) {
  WorkingZoneCodec codec(32, 4, 8);
  codec.Encode(0x10000000, true);   // zone A
  codec.Encode(0x20000000, false);  // zone B
  codec.Encode(0x30000000, true);   // zone C
  // Returning to each zone within its window must hit.
  EXPECT_EQ(codec.Encode(0x10000004, true).redundant & 1, 1u);
  EXPECT_EQ(codec.Encode(0x20000008, false).redundant & 1, 1u);
  EXPECT_EQ(codec.Encode(0x3000000C, true).redundant & 1, 1u);
}

TEST(WorkingZoneCodecTest, EncoderAndDecoderZoneFilesStayInLockStep) {
  WorkingZoneCodec codec(32, 4, 8);
  SyntheticGenerator gen(77);
  // Stress with more distinct regions than zone registers.
  std::vector<BusAccess> stream;
  const Word bases[] = {0x1000, 0x20000, 0x300000, 0x4000000, 0x50000000,
                        0x6100000};
  for (int i = 0; i < 4000; ++i) {
    const Word base = bases[static_cast<std::size_t>(i * 2654435761u) %
                            std::size(bases)];
    stream.push_back({base + (static_cast<Word>(i) % 32) * 4, i % 2 == 0});
  }
  EXPECT_NO_THROW(Evaluate(codec, stream, 4, /*verify_decode=*/true));
}

TEST(WorkingZoneCodecTest, RejectsBadGeometry) {
  EXPECT_THROW(WorkingZoneCodec(32, 3, 8), CodecConfigError);
  EXPECT_THROW(WorkingZoneCodec(8, 4, 8), CodecConfigError);
  EXPECT_THROW(WorkingZoneCodec(32, 4, 0), CodecConfigError);
}

// Regression pins for the suspected (and refuted) wrap-around bug: the
// biased-offset window is computed mod 2^width on both ends, so zones
// straddling the 0 / 2^width - 1 seam keep hitting and round-tripping.
// See the class comment in working_zone_codec.h for the arithmetic.

TEST(WorkingZoneCodecTest, WrapZoneNearTopHitsAddressesPastZero) {
  WorkingZoneCodec codec(32, 4, 8);
  // Seed a zone 16 bytes below the top of the address space...
  const BusState seed = codec.Encode(0xFFFFFFF0, true);
  ASSERT_EQ(codec.Decode(seed, true), 0xFFFFFFF0u);
  // ...then reference past the wrap: 0xC - 0xFFFFFFF0 = +0x1C mod 2^32,
  // well inside the signed 2^7 window, so this must be a zone hit.
  const BusState hit = codec.Encode(0x0000000C, true);
  EXPECT_EQ(hit.redundant & 1, 1u) << "wrap access missed the zone";
  EXPECT_EQ(codec.Decode(hit, true), 0x0000000Cu);
}

TEST(WorkingZoneCodecTest, WrapZoneNearZeroHitsAddressesBelowIt) {
  WorkingZoneCodec codec(32, 4, 8);
  const BusState seed = codec.Encode(0x00000004, true);
  ASSERT_EQ(codec.Decode(seed, true), 0x00000004u);
  // A negative delta that wraps: 0xFFFFFFF0 - 0x4 = -0x14 mod 2^32.
  const BusState hit = codec.Encode(0xFFFFFFF0, true);
  EXPECT_EQ(hit.redundant & 1, 1u) << "wrap access missed the zone";
  EXPECT_EQ(codec.Decode(hit, true), 0xFFFFFFF0u);
}

TEST(WorkingZoneCodecTest, WrapStreamRoundTripsUnderLockStep) {
  // A stack-like zone oscillating across the seam, interleaved with a
  // far-away code zone: every access must decode exactly, hit or miss.
  WorkingZoneCodec codec(32, 4, 8);
  std::vector<BusAccess> stream;
  for (int i = 0; i < 400; ++i) {
    const Word near_seam =
        (i % 2 == 0) ? Word{0xFFFFFFC0} + static_cast<Word>(i % 32) * 4
                     : Word{0x00000000} + static_cast<Word>(i % 16) * 4;
    stream.push_back({near_seam, true});
    stream.push_back({0x40000000 + static_cast<Word>(i % 8) * 4, false});
  }
  EXPECT_NO_THROW(Evaluate(codec, stream, 4, /*verify_decode=*/true));
}

// ---------------------------------------------------------------------------
// Beach
// ---------------------------------------------------------------------------

TEST(BeachCodecTest, UntrainedIsIdentity) {
  BeachCodec codec(32, 8);
  EXPECT_EQ(codec.Encode(0xDEADBEEF, true).lines, 0xDEADBEEFu);
  for (BeachCodec::Transform t : codec.transforms()) {
    EXPECT_EQ(t, BeachCodec::Transform::kIdentity);
  }
}

TEST(BeachCodecTest, TrainingPicksGrayForCountingCluster) {
  // A unit-stride counter toggles low bits heavily; Gray on the low
  // cluster cuts that to one transition per step.
  BeachCodec codec(32, 8);
  std::vector<Word> sample;
  for (Word a = 0; a < 4096; ++a) sample.push_back(a);
  codec.Train(sample);
  EXPECT_EQ(codec.transforms()[0], BeachCodec::Transform::kGray);
}

TEST(BeachCodecTest, TrainingPicksXorPrevForAlternatingCluster) {
  // A cluster alternating between two far-apart values repeats after XOR
  // decorrelation (the sent value is constant from step 2 on).
  BeachCodec codec(16, 8);
  std::vector<Word> sample;
  for (int i = 0; i < 2048; ++i) sample.push_back(i % 2 == 0 ? 0x00AA : 0x0055);
  codec.Train(sample);
  EXPECT_EQ(codec.transforms()[0], BeachCodec::Transform::kXorPrev);
}

TEST(BeachCodecTest, TrainingNeverHurtsOnTheTrainingStream) {
  SyntheticGenerator gen(123);
  const AddressTrace trace = gen.MultiplexedLike(20000, 0.35, 4, 32);
  const auto accesses = trace.ToBusAccesses();
  const std::vector<Word> sample = trace.Addresses();

  BeachCodec untrained(32, 8);
  const EvalResult base = Evaluate(untrained, accesses, 4, true);
  BeachCodec trained(32, 8);
  trained.Train(sample);
  const EvalResult tuned = Evaluate(trained, accesses, 4, true);
  EXPECT_LE(tuned.transitions, base.transitions);
}

TEST(BeachCodecTest, RoundTripsAfterTraining) {
  BeachCodec codec(32, 8);
  SyntheticGenerator gen(9);
  const AddressTrace train = gen.InstructionLike(5000, 6.0, 4, 32);
  codec.Train(train.Addresses());
  const AddressTrace test = gen.DataLike(5000, 4, 32);
  EXPECT_NO_THROW(Evaluate(codec, test.ToBusAccesses(), 4, true));
}

TEST(BeachCodecTest, CorrelationClusteringGroupsCoToggledLines) {
  // Two interleaved line groups that always toggle together: bits
  // {0,2,4,6} flip as a block, bits {1,3,5,7} flip as another block.
  // Correlation clustering must put each block in one cluster even
  // though the lines are not adjacent.
  BeachCodec codec(8, 4, BeachCodec::Clustering::kCorrelation);
  std::vector<Word> sample;
  Word value = 0;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 4000; ++i) {
    if (rng() % 2 == 0) value ^= 0b01010101;
    if (rng() % 3 == 0) value ^= 0b10101010;
    sample.push_back(value);
  }
  codec.Train(sample);
  ASSERT_EQ(codec.clusters().size(), 2u);
  for (const auto& cluster : codec.clusters()) {
    // All members share parity: a pure even or pure odd group.
    for (unsigned line : cluster) {
      EXPECT_EQ(line % 2, cluster.front() % 2)
          << "mixed cluster: correlation grouping failed";
    }
  }
}

TEST(BeachCodecTest, CorrelationVariantRoundTripsAfterTraining) {
  BeachCodec codec(32, 8, BeachCodec::Clustering::kCorrelation);
  SyntheticGenerator gen(14);
  const AddressTrace train = gen.MultiplexedLike(8000, 0.35, 4, 32);
  codec.Train(train.Addresses());
  const AddressTrace test = gen.MultiplexedLike(8000, 0.35, 4, 32);
  EXPECT_NO_THROW(Evaluate(codec, test.ToBusAccesses(), 4, true));
}

TEST(BeachCodecTest, CorrelationClusteringNeverHurtsOnTrainingStream) {
  SyntheticGenerator gen(15);
  const AddressTrace trace = gen.MultiplexedLike(20000, 0.35, 4, 32);
  const auto accesses = trace.ToBusAccesses();
  const std::vector<Word> sample = trace.Addresses();

  BeachCodec untrained(32, 8);
  const EvalResult base = Evaluate(untrained, accesses, 4, true);
  BeachCodec correlated(32, 8, BeachCodec::Clustering::kCorrelation);
  correlated.Train(sample);
  const EvalResult tuned = Evaluate(correlated, accesses, 4, true);
  EXPECT_LE(tuned.transitions, base.transitions);
}

TEST(BeachCodecTest, RejectsBadClusterSize) {
  EXPECT_THROW(BeachCodec(32, 0), CodecConfigError);
  EXPECT_THROW(BeachCodec(8, 16), CodecConfigError);
}

// ---------------------------------------------------------------------------
// MTF (self-organizing list)
// ---------------------------------------------------------------------------

TEST(MtfCodecTest, RepeatingValuesHitTheDictionary) {
  MtfCodec codec(32, 16);
  codec.Encode(0x7FFF0040, true);                        // miss
  codec.Encode(0x10008000, true);                        // miss
  const BusState hit = codec.Encode(0x7FFF0040, true);   // revisit
  EXPECT_EQ(hit.redundant & 1, 1u);
  // Upper lines frozen at the previous bus value.
  EXPECT_EQ(hit.lines >> 4, Word{0x10008000} >> 4);
  EXPECT_EQ(hit.lines & 0xF, 1u);  // it sat at index 1
}

TEST(MtfCodecTest, MoveToFrontPromotesHotValues) {
  MtfCodec codec(32, 4);
  codec.Encode(0xAAA0, true);
  codec.Encode(0xBBB0, true);
  codec.Encode(0xAAA0, true);  // hit at 1, promoted to 0
  const BusState again = codec.Encode(0xAAA0, true);
  EXPECT_EQ(again.lines & 0x3, 0u);
}

TEST(MtfCodecTest, EvictedValuesMissAgain) {
  MtfCodec codec(32, 4);
  // Fill with 4 fresh values, pushing the seeds out.
  for (Word v : {Word{0x100}, Word{0x200}, Word{0x300}, Word{0x400}}) {
    codec.Encode(v, true);
  }
  EXPECT_EQ(codec.Encode(0x500, true).redundant, 0u);  // miss, evicts 0x100
  EXPECT_EQ(codec.Encode(0x100, true).redundant, 0u);  // gone
  EXPECT_EQ(codec.Encode(0x400, true).redundant, 1u);  // still resident
}

TEST(MtfCodecTest, AlternatingAddressesBecomeCheap) {
  // A stack slot and an array pointer ping-ponging: binary pays the full
  // Hamming distance every cycle; MTF pays index wiggles only.
  MtfCodec codec(32, 16);
  TransitionCounter mtf_counter(32, 1);
  TransitionCounter binary_counter(32, 0);
  for (int i = 0; i < 2000; ++i) {
    const Word a = (i % 2 == 0) ? 0x7FFF0040 : 0x10008000;
    mtf_counter.Observe(codec.Encode(a, true));
    binary_counter.Observe(BusState{a, 0});
  }
  EXPECT_LT(mtf_counter.total(), binary_counter.total() / 5);
}

TEST(MtfCodecTest, LockStepUnderStress) {
  MtfCodec codec(32, 16);
  SyntheticGenerator gen(55);
  const AddressTrace trace = gen.ZipfRandom(20000, 64, 1.1, 32);
  EXPECT_NO_THROW(Evaluate(codec, trace.ToBusAccesses(), 4, true));
}

TEST(MtfCodecTest, RejectsBadGeometry) {
  EXPECT_THROW(MtfCodec(32, 0), CodecConfigError);
  EXPECT_THROW(MtfCodec(32, 12), CodecConfigError);
  EXPECT_THROW(MtfCodec(4, 16), CodecConfigError);
}

}  // namespace
}  // namespace abenc
