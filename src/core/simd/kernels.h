// The SIMD kernel layer: one table of block kernels per ISA backend.
//
// Every backend (scalar always; AVX2 on x86-64 hosts that report the
// extension; NEON on aarch64) implements the same table: the six
// high-traffic encode sweeps (binary, Gray, offset, T0, INC-XOR,
// single-partition bus-invert), the XOR+popcount transition-accounting
// sweep and the in-sequence counter. The scalar table is the reference;
// every other backend is bit-identical to it by contract, enforced by
// the `kernel-dispatch-identity` universal verify property,
// tests/kernel_dispatch_test and the CI ISA-matrix byte-diff. Backend
// selection lives in core/simd/kernel_dispatch.h.
//
// Kernels read addresses through a strided AddressView so the same
// function serves both input layouts with zero copies: a raw columnar
// buffer (the mmap-backed packed-trace path, step 1) and the `address`
// member of a contiguous BusAccess array (step 2).
#pragma once

#include <cstddef>

#include "core/types.h"

namespace abenc::simd {

/// Strided view of the address column of a stream chunk:
/// `view[i] == view.addr[view.step * i]`. Step 1 is a plain Word array;
/// step 2 walks the `address` member of a BusAccess array in place.
struct AddressView {
  const Word* addr = nullptr;
  std::size_t step = 1;

  Word operator[](std::size_t i) const { return addr[step * i]; }
};

/// View the addresses of a non-empty BusAccess array without copying.
inline AddressView ViewAddresses(const BusAccess* accesses) {
  static_assert(sizeof(BusAccess) == 2 * sizeof(Word),
                "BusAccess must span exactly two Words for strided reads");
  static_assert(offsetof(BusAccess, address) == 0,
                "BusAccess::address must be the leading member");
  return AddressView{&accesses->address, 2};
}

/// B(t) = b(t) & mask (stateless).
using BinaryEncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                                BusState* out);

/// Stride-aware Gray: (BinaryToGray(b) & high_mask) | (b & low_mask),
/// with b pre-masked (stateless).
using GrayEncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                              Word low_mask, Word high_mask, BusState* out);

/// Offset: B(t) = (b(t) - b(t-1)) mod 2^N. *prev_addr carries the
/// masked b(t-1) across calls.
using OffsetEncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                                Word* prev_addr, BusState* out);

/// INC-XOR: B(t) = (B(t-1) ^ b(t) ^ ((b(t-1) + S) & mask)) & mask.
/// *prev_addr / *prev_bus carry the masked encoder registers.
using IncXorEncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                                Word stride, Word* prev_addr, Word* prev_bus,
                                BusState* out);

/// T0 with the INC line in redundant bit 0: freeze the bus and assert
/// INC when b(t) = b(t-1) + S, else send b(t) verbatim. The three
/// encoder registers (first-word flag, b(t-1), frozen B(t-1)) carry
/// across calls so any chunking reproduces the per-word trajectory.
using T0EncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                            Word stride, bool* has_prev, Word* prev_addr,
                            BusState* prev_bus, BusState* out);

/// Single-partition bus-invert: invert and assert INV when the Hamming
/// distance to the previous encoded state (INV line included) exceeds
/// N/2. *prev carries B(t-1) | INV(t-1).
using BusInvertEncodeFn = void (*)(AddressView in, std::size_t n, Word mask,
                                   int width, BusState* prev, BusState* out);

/// Transition accounting over a block of consecutive bus states:
/// accumulate the total toggle count, the worst single-cycle count and
/// the per-line histogram (data lines at [0, width), redundant lines at
/// [width, ...)), continuing from *prev, which is updated to the last
/// state of the block.
using TransitionSweepFn = void (*)(const BusState* states, std::size_t n,
                                   Word data_mask, Word redundant_mask,
                                   unsigned width, BusState* prev,
                                   long long* total, int* peak,
                                   long long* per_line);

/// In-sequence counter: add to *count every access whose masked address
/// equals (previous raw address + stride) & mask — the exact predicate
/// of InSequencePercent. *prev_addr (raw) and *has_prev carry across
/// chunks.
using InSeqCountFn = void (*)(AddressView in, std::size_t n, Word mask,
                              Word stride, Word* prev_addr, bool* has_prev,
                              std::size_t* count);

/// One backend's complete kernel set.
struct KernelTable {
  const char* name;
  BinaryEncodeFn binary;
  GrayEncodeFn gray;
  OffsetEncodeFn offset;
  IncXorEncodeFn inc_xor;
  T0EncodeFn t0;
  BusInvertEncodeFn bus_invert;
  TransitionSweepFn sweep;
  InSeqCountFn in_seq;
};

/// The always-correct reference implementation (portable C++).
const KernelTable& ScalarKernels();

#if defined(ABENC_HAVE_AVX2)
/// 4-lane AVX2 kernels (compiled per-file with -mavx2; call only when
/// the host reports the extension — kernel_dispatch guarantees this).
const KernelTable& Avx2Kernels();
#endif

#if defined(ABENC_HAVE_NEON)
/// 2-lane NEON kernels (aarch64 baseline, no extra flags needed).
const KernelTable& NeonKernels();
#endif

namespace detail {

// The scalar kernels, exposed so SIMD backends can reuse them for the
// sweeps whose recurrences do not vectorize (bus-invert's majority
// decision) and for block tails.
void BinaryEncodeScalar(AddressView in, std::size_t n, Word mask,
                        BusState* out);
void GrayEncodeScalar(AddressView in, std::size_t n, Word mask, Word low_mask,
                      Word high_mask, BusState* out);
void OffsetEncodeScalar(AddressView in, std::size_t n, Word mask,
                        Word* prev_addr, BusState* out);
void IncXorEncodeScalar(AddressView in, std::size_t n, Word mask, Word stride,
                        Word* prev_addr, Word* prev_bus, BusState* out);
void T0EncodeScalar(AddressView in, std::size_t n, Word mask, Word stride,
                    bool* has_prev, Word* prev_addr, BusState* prev_bus,
                    BusState* out);
void BusInvertEncodeScalar(AddressView in, std::size_t n, Word mask, int width,
                           BusState* prev, BusState* out);
void TransitionSweepScalar(const BusState* states, std::size_t n,
                           Word data_mask, Word redundant_mask, unsigned width,
                           BusState* prev, long long* total, int* peak,
                           long long* per_line);
void InSeqCountScalar(AddressView in, std::size_t n, Word mask, Word stride,
                      Word* prev_addr, bool* has_prev, std::size_t* count);

}  // namespace detail

}  // namespace abenc::simd
