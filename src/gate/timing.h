// Static timing analysis over a Netlist: a topological longest-path pass
// with a linear (intrinsic + slope * load) cell delay model, the classic
// pre-layout STA the paper's "critical path is 5.36 ns" figure came from.
#pragma once

#include <string>
#include <vector>

#include "gate/netlist.h"

namespace abenc::gate {

/// Result of one timing pass.
struct TimingReport {
  double critical_path_ns = 0.0;
  NetId critical_endpoint = kNoNet;
  /// Nets of the critical path, launch point first (a flop output or a
  /// primary input), endpoint last.
  std::vector<NetId> critical_path;
  /// Highest clock the circuit can run at given the critical path plus
  /// the flop clock-to-Q and setup margins folded into the DFF spec.
  double max_frequency_hz = 0.0;
};

/// Analyse `netlist`: arrival time 0 at primary inputs and flop outputs
/// (clock-to-Q folded into the DFF intrinsic delay at the launch side),
/// each gate adds intrinsic delay plus slope * driven capacitance,
/// endpoints are flop D pins and marked primary outputs.
TimingReport AnalyzeTiming(const Netlist& netlist);

/// Human-readable path report (net names and cumulative arrival times).
std::string FormatTimingReport(const Netlist& netlist,
                               const TimingReport& report);

}  // namespace abenc::gate
