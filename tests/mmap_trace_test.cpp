// Tests of the zero-copy columnar trace format (trace/mmap_trace.h):
// write/read round-trips, the MmapTraceSource chunk reader and its
// ViewColumns fast path, hardened header validation (bad magic,
// overflowing counts, size mismatches), the SaveTrace/LoadTrace
// ".ctrace" dispatch, and the end-to-end guarantee that evaluating
// straight off the mapping is bit-identical to the per-word reference.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "trace/mmap_trace.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace abenc {
namespace {

std::string TempPath(const std::string& filename) {
  return (std::filesystem::path(::testing::TempDir()) / filename).string();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(MmapTraceTest, RoundTripPreservesEntriesAndName) {
  SyntheticGenerator gen(11);
  AddressTrace original = gen.MultiplexedLike(700, 0.4, 4, 32);
  original.set_name("gzip-mux");
  const std::string path = TempPath("abenc_mmap_roundtrip.ctrace");
  WriteColumnarTrace(path, original);

  const AddressTrace loaded = ReadColumnarTrace(path);
  EXPECT_EQ(loaded.name(), "gzip-mux");
  EXPECT_EQ(loaded.entries(), original.entries());
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, EmptyTraceRoundTrips) {
  AddressTrace empty("nothing");
  const std::string path = TempPath("abenc_mmap_empty.ctrace");
  WriteColumnarTrace(path, empty);
  const AddressTrace loaded = ReadColumnarTrace(path);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.name(), "nothing");

  const MmapTraceSource source(path);
  EXPECT_EQ(source.size(), 0u);
  std::array<BusAccess, 8> chunk;
  EXPECT_EQ(source.Read(0, chunk), 0u);
  TraceColumns columns;
  EXPECT_EQ(source.ViewColumns(0, 8, &columns), 0u);
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, EmptyTraceRoundTripsThroughSaveLoadDispatch) {
  // The same empty trace must survive every on-disk format that
  // SaveTrace/LoadTrace dispatch on, not just the columnar writer.
  AddressTrace empty("idle");
  for (const char* ext : {".ctrace", ".btrace", ".trace"}) {
    const std::string path = TempPath(std::string("abenc_empty_rt") + ext);
    SaveTrace(path, empty);
    const AddressTrace loaded = LoadTrace(path);
    EXPECT_EQ(loaded.size(), 0u) << ext;
    std::filesystem::remove(path);
  }
}

TEST(MmapTraceTest, ZeroByteFileFailsCleanlyWithByteOffset) {
  // A 0-byte .ctrace is not a valid empty trace (that still carries a
  // 24-byte header); it must fail with a diagnostic, not crash in mmap.
  const std::string path = TempPath("abenc_zero_byte.ctrace");
  WriteBytes(path, "");
  try {
    const MmapTraceSource source(path);
    FAIL() << "zero-byte file unexpectedly accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("byte offset 0"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, ReadAndViewColumnsAgreeWithTheTrace) {
  SyntheticGenerator gen(12);
  const AddressTrace trace = gen.MultiplexedLike(500, 0.35, 4, 32);
  const std::vector<BusAccess> expected = trace.ToBusAccesses();
  const std::string path = TempPath("abenc_mmap_read.ctrace");
  WriteColumnarTrace(path, trace);
  const MmapTraceSource source(path);
  ASSERT_EQ(source.size(), expected.size());

  // Read() at an arbitrary interior offset, clamped at the end.
  std::array<BusAccess, 64> chunk;
  const std::size_t n = source.Read(470, chunk);
  ASSERT_EQ(n, 30u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(chunk[i].address, expected[470 + i].address) << i;
    EXPECT_EQ(chunk[i].sel, expected[470 + i].sel) << i;
  }

  // ViewColumns() exposes the same accesses without copying.
  TraceColumns columns;
  const std::size_t m = source.ViewColumns(100, 64, &columns);
  ASSERT_EQ(m, 64u);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(columns.addresses[i], expected[100 + i].address) << i;
    EXPECT_EQ(columns.sel[i] != 0, expected[100 + i].sel) << i;
  }

  // Past-the-end views are empty, not clamped into garbage.
  EXPECT_EQ(source.ViewColumns(expected.size(), 8, &columns), 0u);
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, SaveLoadDispatchOnCtraceExtension) {
  SyntheticGenerator gen(13);
  AddressTrace trace = gen.Sequential(200, 0x400000, 4, 32);
  trace.set_name("seq");
  const std::string path = TempPath("abenc_mmap_dispatch.ctrace");
  SaveTrace(path, trace);
  EXPECT_EQ(LoadTrace(path).entries(), trace.entries());
  EXPECT_EQ(LoadTrace(path).name(), "seq");

  // A columnar file with no recorded name falls back to the path, the
  // convention every other reader follows.
  AddressTrace nameless;
  nameless.Append(0x100, AccessKind::kData);
  SaveTrace(path, nameless);
  EXPECT_EQ(LoadTrace(path).name(), path);
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, RejectsCorruptHeaders) {
  const std::string path = TempPath("abenc_mmap_corrupt.ctrace");
  const auto message_of = [&](const std::string& bytes) -> std::string {
    WriteBytes(path, bytes);
    try {
      const MmapTraceSource source(path);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };

  // Shorter than the 24-byte header: the message names the byte offset
  // where the file ran out, matching the row-binary reader's phrasing.
  const std::string short_msg = message_of("ABENCTC1");
  EXPECT_NE(short_msg.find("truncated"), std::string::npos) << short_msg;
  EXPECT_NE(short_msg.find("byte offset 8"), std::string::npos) << short_msg;

  // Wrong magic (the row-binary magic is the likely mixup).
  std::string wrong_magic(24, '\0');
  std::memcpy(wrong_magic.data(), "ABENCTR1", 8);
  const std::string magic_msg = message_of(wrong_magic);
  EXPECT_NE(magic_msg.find("bad magic at byte offset 0"),
            std::string::npos)
      << magic_msg;

  // A valid one-entry file to corrupt from here on.
  AddressTrace t("n");
  t.Append(0x400000, AccessKind::kInstruction);
  WriteColumnarTrace(path, t);
  const std::string good = ReadBytes(path);
  ASSERT_EQ(good.size(), 24u + 8u + 1u + 1u);

  // A count whose byte size wraps uint64: rejected from the header
  // alone, before any offset arithmetic or allocation can use it.
  std::string overflowing = good;
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  std::memcpy(overflowing.data() + 8, &huge, sizeof(huge));
  EXPECT_NE(message_of(overflowing).find("overflows"), std::string::npos);

  // A name length that pushes the expected size past uint64.
  std::string bad_name_len = good;
  std::memcpy(bad_name_len.data() + 16, &huge, sizeof(huge));
  EXPECT_NE(message_of(bad_name_len).find("name length"),
            std::string::npos);

  // A count the file does not actually contain.
  std::string lying = good;
  const std::uint64_t two = 2;
  std::memcpy(lying.data() + 8, &two, sizeof(two));
  EXPECT_NE(message_of(lying).find("header implies"), std::string::npos);

  // Trailing garbage makes the size check fail the same way.
  EXPECT_NE(message_of(good + "x").find("header implies"),
            std::string::npos);

  // The pristine bytes still load.
  WriteBytes(path, good);
  EXPECT_EQ(ReadColumnarTrace(path).entries(), t.entries());
  std::filesystem::remove(path);
}

TEST(MmapTraceTest, MissingFileThrows) {
  EXPECT_THROW(MmapTraceSource(TempPath("abenc_no_such_file.ctrace")),
               std::runtime_error);
}

TEST(MmapTraceTest, EvaluatingOffTheMappingIsBitIdentical) {
  // The property the zero-copy path exists for: EvaluateBatched fed by
  // the mmap source must reproduce the per-word reference exactly, for
  // a stateful redundant code as well as a plain one.
  SyntheticGenerator gen(14);
  const AddressTrace trace = gen.MultiplexedLike(20000, 0.35, 4, 32);
  const std::vector<BusAccess> stream = trace.ToBusAccesses();
  const std::string path = TempPath("abenc_mmap_eval.ctrace");
  WriteColumnarTrace(path, trace);
  const MmapTraceSource source(path);

  for (const std::string codec_name : {"gray", "t0-bi"}) {
    const CodecOptions options;
    const EvalResult reference = Evaluate(*MakeCodec(codec_name, options),
                                          stream, options.stride, true);
    const EvalResult mapped = EvaluateBatched(
        *MakeCodec(codec_name, options), source, options.stride, true);
    EXPECT_EQ(mapped.transitions, reference.transitions) << codec_name;
    EXPECT_EQ(mapped.peak_transitions, reference.peak_transitions)
        << codec_name;
    EXPECT_EQ(mapped.stream_length, reference.stream_length) << codec_name;
    // Exact double equality on purpose (the bit-identity contract).
    EXPECT_EQ(mapped.in_sequence_percent, reference.in_sequence_percent)
        << codec_name;
    EXPECT_EQ(mapped.per_line, reference.per_line) << codec_name;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace abenc
