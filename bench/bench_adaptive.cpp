// The adaptive meta-codec's bench: phase-changing and mixed-phase
// streams where no single member code wins everywhere, so the per-window
// selector has room to show (or lose) its margin. Rows are exact
// transition counts via the experiment engine; --json emits the
// `abenc.comparison.v1` document the CI regression gate diffs against
// bench/baselines/adaptive.json.
//
// Every stream is generated from SplitMix64 alone (no std distributions,
// whose output is implementation-defined), so the committed baseline is
// bit-identical across platforms.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/adaptive_codec.h"
#include "core/codec_factory.h"
#include "core/experiment.h"
#include "report/json_writer.h"
#include "report/table.h"
#include "verify/stream_gen.h"

namespace abenc {
namespace {

constexpr unsigned kWidth = 32;
constexpr Word kStride = 4;

/// Phase generators: each appends `length` accesses of one regime.
void SequentialPhase(std::vector<BusAccess>& stream, Word base, Word stride,
                     std::size_t length) {
  const Word mask = LowMask(kWidth);
  for (std::size_t i = 0; i < length; ++i) {
    stream.push_back(BusAccess{(base + stride * i) & mask, true});
  }
}

void RandomPhase(std::vector<BusAccess>& stream, std::uint64_t& chain,
                 std::size_t length) {
  const Word mask = LowMask(kWidth);
  for (std::size_t i = 0; i < length; ++i) {
    stream.push_back(BusAccess{verify::MixSeed(chain++) & mask, true});
  }
}

void AlternatingPhase(std::vector<BusAccess>& stream, std::size_t length) {
  const Word mask = LowMask(kWidth);
  for (std::size_t i = 0; i < length; ++i) {
    stream.push_back(BusAccess{i % 2 == 0 ? Word{0} : mask, true});
  }
}

std::vector<NamedStream> PhaseStreams() {
  std::vector<NamedStream> streams;

  // Abrupt stride changes: the configured stride (T0 freezes the bus)
  // against a stride-1 scan (Gray's single-toggle regime).
  {
    std::vector<BusAccess> s;
    std::uint64_t chain = 0x5742101;
    for (int cycle = 0; cycle < 8; ++cycle) {
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, kStride,
                      512);
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, 1, 512);
    }
    streams.emplace_back("phase-stride4-stride1", std::move(s));
  }

  // Sequential runs against uniform noise (bus-invert's regime).
  {
    std::vector<BusAccess> s;
    std::uint64_t chain = 0x5EC7A2D;
    for (int cycle = 0; cycle < 8; ++cycle) {
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, kStride,
                      512);
      RandomPhase(s, chain, 512);
    }
    streams.emplace_back("phase-seq-random", std::move(s));
  }

  // Sequential runs against worst-case alternating patterns, where
  // bus-invert caps the toggle bill at one line.
  {
    std::vector<BusAccess> s;
    std::uint64_t chain = 0x5EC2A17;
    for (int cycle = 0; cycle < 8; ++cycle) {
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, kStride,
                      512);
      AlternatingPhase(s, 512);
    }
    streams.emplace_back("phase-seq-alternating", std::move(s));
  }

  // The acceptance gate's three-regime mix, at bench scale.
  {
    std::vector<BusAccess> s;
    std::uint64_t chain = 0x3D1FEED;
    for (int cycle = 0; cycle < 8; ++cycle) {
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, kStride,
                      512);
      SequentialPhase(s, verify::MixSeed(chain++) & ~Word{0xFFF}, 1, 512);
      RandomPhase(s, chain, 512);
    }
    streams.emplace_back("mixed-three-regime", std::move(s));
  }

  return streams;
}

}  // namespace
}  // namespace abenc

int main(int argc, char** argv) {
  using namespace abenc;

  const bench::BenchOptions bench_options =
      bench::ParseBenchOptions(argc, argv);
  bench::MetricsSession metrics(bench_options.metrics_path);

  CodecOptions options;
  options.width = kWidth;
  options.stride = kStride;

  std::vector<std::string> codecs = AdaptiveCodec::DefaultPalette();
  codecs.push_back("adaptive");

  RunOptions run;
  run.parallelism = bench_options.parallelism;
  run.chunk_size = bench_options.chunk_size;
  run.per_word = bench_options.per_word;
  const std::string title =
      "Adaptive meta-codec on phase-changing streams (32-bit bus, "
      "window 64, hysteresis 16)";
  const Comparison comparison =
      RunComparison(codecs, PhaseStreams(), options, nullptr, run);

  std::vector<std::string> headers = {"Stream", "Length", "Binary Trans."};
  for (const std::string& name : codecs) {
    headers.push_back(MakeCodec(name, options)->display_name() + " Trans.");
    headers.push_back("Savings");
  }
  TextTable table(std::move(headers));
  for (const ComparisonRow& row : comparison.rows) {
    std::vector<std::string> cells = {
        row.stream_name, std::to_string(row.binary.stream_length),
        std::to_string(row.binary.transitions)};
    for (const ComparisonCell& cell : row.cells) {
      cells.push_back(std::to_string(cell.result.transitions));
      cells.push_back(FormatPercent(cell.savings_percent));
    }
    table.AddRow(std::move(cells));
  }
  std::vector<std::string> average = {"Average", "", ""};
  for (double savings : comparison.average_savings()) {
    average.push_back("");
    average.push_back(FormatPercent(savings));
  }
  table.AddRule();
  table.AddRow(std::move(average));

  std::cout << title << "\n" << table.ToString() << "\n";
  std::cout << "Adaptive wins wherever the regime dwell time amortizes\n"
               "the one-window decision lag (and must never lose to\n"
               "binary); on phase-seq-alternating the lag is the whole\n"
               "story — each stale window burns ~32 toggles/word until\n"
               "the switch lands, which is exactly the hysteresis\n"
               "trade the window knob controls.\n"
               "tests/adaptive_acceptance_test asserts the hard claims:\n"
               "strictly best on the three-regime mix, never worse than\n"
               "binary on the nine paper streams.\n";

  if (!bench_options.json_path.empty()) {
    WriteJsonFile(bench_options.json_path, ComparisonToJson(comparison, title));
    std::cout << "JSON written to " << bench_options.json_path << "\n";
  }
  metrics.WriteIfEnabled();
  return 0;
}
