// Tests of the src/verify conformance subsystem: the universal invariant
// suite over every factory codec, the differential oracles (gate
// netlists, Markov closed forms, parallel engine), the ddmin stream
// minimizer, and — the property the whole harness exists for — that a
// deliberately injected encode bug is caught and its printed
// `--seed`/`--property` reproducer replays the failure deterministically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/minimize.h"
#include "verify/oracles.h"
#include "verify/properties.h"
#include "verify/runner.h"
#include "verify/stream_gen.h"

namespace abenc::verify {
namespace {

// ---------------------------------------------------------------------------
// Stream generators
// ---------------------------------------------------------------------------

TEST(StreamGenTest, SameSeedSameStream) {
  for (StreamFamily family : AllStreamFamilies()) {
    const auto a = GenerateStream(family, 42, 300, 32, 4);
    const auto b = GenerateStream(family, 42, 300, 32, 4);
    EXPECT_EQ(a, b) << FamilyName(family);
    EXPECT_EQ(a.size(), 300u) << FamilyName(family);
  }
}

TEST(StreamGenTest, DifferentSeedsDiverge) {
  for (StreamFamily family : AllStreamFamilies()) {
    const auto a = GenerateStream(family, 1, 300, 32, 4);
    const auto b = GenerateStream(family, 2, 300, 32, 4);
    EXPECT_NE(a, b) << FamilyName(family);
  }
}

TEST(StreamGenTest, FamilyNamesRoundTrip) {
  for (StreamFamily family : AllStreamFamilies()) {
    const auto parsed = ParseFamily(FamilyName(family));
    ASSERT_TRUE(parsed.has_value()) << FamilyName(family);
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(ParseFamily("no-such-family").has_value());
}

TEST(StreamGenTest, BoundaryFamilyHitsTheMaskEdges) {
  const auto stream =
      GenerateStream(StreamFamily::kBoundary, 3, 2000, 16, 4);
  bool saw_zero = false;
  bool saw_all_ones = false;
  for (const BusAccess& access : stream) {
    if (access.address == 0) saw_zero = true;
    if (access.address == LowMask(16)) saw_all_ones = true;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_all_ones);
}

// ---------------------------------------------------------------------------
// Universal invariant suite over every factory codec
// ---------------------------------------------------------------------------

class UniversalSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(UniversalSuiteTest, EveryPropertyHoldsOnEveryFamily) {
  const std::string codec = GetParam();
  CodecOptions options;  // 32-bit bus, stride 4
  const CodecFactoryFn factory = DefaultCodecFactory();
  for (const std::string& property : UniversalPropertyNames()) {
    for (StreamFamily family : AllStreamFamilies()) {
      const auto stream = GenerateStream(family, 0xC0FFEE, 400, 32, 4);
      const auto failure =
          CheckUniversalProperty(property, codec, options, stream, factory);
      EXPECT_FALSE(failure.has_value())
          << property << ":" << codec << ":" << FamilyName(family) << " — "
          << (failure ? failure->message : "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, UniversalSuiteTest,
                         ::testing::ValuesIn(AllCodecNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Differential oracles
// ---------------------------------------------------------------------------

class GateOracleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GateOracleTest, BehaviouralCodecMatchesItsNetlist) {
  CodecOptions options;
  options.width = 16;  // keeps the netlists small; widths are swept in
  options.stride = 4;  // gate_test, equivalence is what matters here
  const auto stream =
      GenerateStream(StreamFamily::kMultiplexed, 99, 300, 16, 4);
  const auto failure = CheckGateEquivalence(GetParam(), options, stream,
                                            DefaultCodecFactory());
  EXPECT_FALSE(failure.has_value())
      << (failure ? failure->message : "");
}

INSTANTIATE_TEST_SUITE_P(GateCodecs, GateOracleTest,
                         ::testing::ValuesIn(GateVerifiableCodecs()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MarkovOracleTest, ClosedFormsAgreeWithMonteCarlo) {
  for (const std::string& codec : MarkovVerifiableCodecs()) {
    const auto failure = CheckMarkovOracle(codec, 32, 4, 0.6, 0xFEED, 60000,
                                           DefaultCodecFactory());
    EXPECT_FALSE(failure.has_value())
        << codec << " — " << (failure ? failure->message : "");
  }
}

TEST(ParallelOracleTest, ParallelEngineIsBitIdentical) {
  const auto failure = CheckParallelIdentity(AllCodecNames(), 5, 200, 32, 4);
  EXPECT_FALSE(failure.has_value()) << (failure ? failure->message : "");
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(MinimizeTest, ShrinksToTheSingleTriggeringAccess) {
  std::vector<BusAccess> stream;
  for (Word a = 0; a < 200; ++a) stream.push_back({a, true});
  stream[137].address = 0xDEAD;
  const auto contains_trigger = [](std::span<const BusAccess> candidate) {
    for (const BusAccess& access : candidate) {
      if (access.address == 0xDEAD) return true;
    }
    return false;
  };
  const auto minimized = MinimizeStream(stream, contains_trigger);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0].address, 0xDEADu);
}

TEST(MinimizeTest, ResultStillFailsAndNeverGrows) {
  std::vector<BusAccess> stream;
  for (Word a = 0; a < 64; ++a) stream.push_back({a * 4, true});
  // Fails while at least 10 accesses survive: minimal size is exactly 10.
  const auto at_least_ten = [](std::span<const BusAccess> candidate) {
    return candidate.size() >= 10;
  };
  const auto minimized = MinimizeStream(stream, at_least_ten);
  EXPECT_EQ(minimized.size(), 10u);
  EXPECT_TRUE(at_least_ten(minimized));
}

TEST(MinimizeTest, ProbeBudgetBoundsTheWork) {
  std::vector<BusAccess> stream;
  for (Word a = 0; a < 1000; ++a) stream.push_back({a, true});
  std::size_t probes = 0;
  const auto counting = [&](std::span<const BusAccess>) {
    ++probes;
    return true;  // everything "fails": worst case for the shrinker
  };
  MinimizeStream(stream, counting, 50);
  EXPECT_LE(probes, 50u);
}

// ---------------------------------------------------------------------------
// Runner: enumeration, clean run, and the injected-bug acceptance test
// ---------------------------------------------------------------------------

TEST(RunnerTest, EnumeratesTheFullPropertyMatrix) {
  VerifyConfig config;
  const VerifyRunner runner(config);
  const auto names = runner.PropertyNames();
  // Universal properties x |codecs| x 6 families, gate oracles x 6
  // families, one markov oracle per modelled code, parallel-identity.
  const std::size_t expected =
      UniversalPropertyNames().size() * AllCodecNames().size() * 6 +
      GateVerifiableCodecs().size() * 6 + MarkovVerifiableCodecs().size() + 1;
  EXPECT_EQ(names.size(), expected);
}

TEST(RunnerTest, FilterSelectsInstances) {
  VerifyConfig config;
  config.property_filter = "round-trip:t0:";
  const VerifyRunner runner(config);
  const auto names = runner.PropertyNames();
  EXPECT_EQ(names.size(), 6u);  // one per stream family
  for (const std::string& name : names) {
    EXPECT_EQ(name.find("round-trip:t0:"), 0u) << name;
  }
}

TEST(RunnerTest, CleanLibraryPassesTheWholeSuite) {
  VerifyConfig config;
  config.iterations = 2;
  config.stream_length = 256;
  const VerifyRunner runner(config);
  const auto failures = runner.Run();
  for (const VerifyFailure& failure : failures) {
    ADD_FAILURE() << VerifyRunner::FormatFailure(failure);
  }
  EXPECT_TRUE(failures.empty());
}

/// Forwards to a real codec but flips bus line 0 on every encode after
/// the first `corrupt_after` — the "deliberately injected encode bug" of
/// the acceptance criteria. Reset() restores the pristine state so the
/// bug is deterministic under replay.
class SabotagedCodec final : public Codec {
 public:
  SabotagedCodec(CodecPtr inner, std::size_t corrupt_after)
      : Codec(inner->width()),
        inner_(std::move(inner)),
        corrupt_after_(corrupt_after) {}

  std::string name() const override { return inner_->name(); }
  std::string display_name() const override {
    return inner_->display_name();
  }
  unsigned redundant_lines() const override {
    return inner_->redundant_lines();
  }

  BusState Encode(Word address, bool sel) override {
    BusState state = inner_->Encode(address, sel);
    if (++encodes_ > corrupt_after_) state.lines ^= 1;  // the bug
    return state;
  }

  Word Decode(const BusState& bus, bool sel) override {
    return inner_->Decode(bus, sel);
  }

  void Reset() override {
    inner_->Reset();
    encodes_ = 0;
  }

 private:
  CodecPtr inner_;
  std::size_t corrupt_after_;
  std::size_t encodes_ = 0;
};

CodecFactoryFn SabotagingFactory(std::string target, std::size_t after) {
  return [target, after](const std::string& name,
                         const CodecOptions& options) -> CodecPtr {
    CodecPtr real = MakeCodec(name, options);
    if (name == target) {
      return std::make_unique<SabotagedCodec>(std::move(real), after);
    }
    return real;
  };
}

TEST(InjectedBugTest, RoundTripCatchesACorruptedEncoder) {
  VerifyConfig config;
  config.iterations = 1;
  config.stream_length = 200;
  config.property_filter = "round-trip:binary:boundary";
  config.factory = SabotagingFactory("binary", 50);
  const VerifyRunner runner(config);

  const auto failures = runner.Run();
  ASSERT_EQ(failures.size(), 1u);
  const VerifyFailure& failure = failures[0];
  EXPECT_EQ(failure.property, "round-trip:binary:boundary");
  EXPECT_EQ(failure.index, 50u);  // the first corrupted encode

  // The printed reproducer is the documented one-liner.
  EXPECT_NE(failure.reproducer.find("--seed"), std::string::npos);
  EXPECT_NE(failure.reproducer.find("--property round-trip:binary:boundary"),
            std::string::npos);
  const std::string report = VerifyRunner::FormatFailure(failure);
  EXPECT_NE(report.find("reproduce: verify_runner --seed"),
            std::string::npos);
  EXPECT_NE(report.find("minimized stream"), std::string::npos);

  // The minimized stream is the smallest one that still reaches the
  // bug: corrupt_after accesses to arm it plus one to trip it.
  EXPECT_EQ(failure.minimized.size(), 51u);
}

TEST(InjectedBugTest, SeedAndPropertyReplayDeterministically) {
  VerifyConfig config;
  config.seed = 11;
  config.iterations = 3;
  config.stream_length = 200;
  config.property_filter = "round-trip:binary:";
  config.factory = SabotagingFactory("binary", 20);
  const auto first = VerifyRunner(config).Run();
  ASSERT_FALSE(first.empty());

  // Replay exactly as the reproducer line instructs: the reported seed,
  // one iteration, the failing property only.
  VerifyConfig replay;
  replay.seed = first[0].seed;
  replay.iterations = 1;
  replay.stream_length = config.stream_length;
  replay.property_filter = first[0].property;
  replay.factory = config.factory;
  const auto second = VerifyRunner(replay).Run();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].property, first[0].property);
  EXPECT_EQ(second[0].index, first[0].index);
  EXPECT_EQ(second[0].message, first[0].message);
  EXPECT_EQ(second[0].minimized, first[0].minimized);
  EXPECT_EQ(second[0].reproducer, first[0].reproducer);
}

TEST(InjectedBugTest, GateOracleCatchesABehaviouralDrift) {
  // Sabotaging the *behavioural* codec makes it disagree with the
  // synthesised netlist: the differential oracle must notice even
  // though the sabotaged codec still round-trips through its own
  // decoder from the netlist's point of view.
  CodecOptions options;
  options.width = 16;
  const auto stream =
      GenerateStream(StreamFamily::kSequentialRuns, 21, 120, 16, 4);
  const auto failure = CheckGateEquivalence(
      "t0", options, stream, SabotagingFactory("t0", 30));
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->index, 30u);
}

TEST(InjectedBugTest, DecoderLockstepCatchesEncoderStatePeeking) {
  // A decoder that answers from state its own Encode() side wrote is
  // invisible to round-trip (encoder and decoder share the object
  // there) but breaks the moment the two ends live apart, as they do
  // on a real bus. Only decoder-lockstep separates the ends.
  class PeekingDecoderCodec final : public Codec {
   public:
    explicit PeekingDecoderCodec(CodecPtr inner)
        : Codec(inner->width()), inner_(std::move(inner)) {}
    std::string name() const override { return inner_->name(); }
    std::string display_name() const override {
      return inner_->display_name();
    }
    unsigned redundant_lines() const override {
      return inner_->redundant_lines();
    }
    BusState Encode(Word address, bool sel) override {
      last_encoded_ = address & LowMask(width());  // the leak
      return inner_->Encode(address, sel);
    }
    Word Decode(const BusState&, bool) override { return last_encoded_; }
    void Reset() override {
      inner_->Reset();
      last_encoded_ = 0;
    }

   private:
    CodecPtr inner_;
    Word last_encoded_ = 0;
  };

  const CodecFactoryFn factory = [](const std::string& name,
                                    const CodecOptions& options) -> CodecPtr {
    CodecPtr real = MakeCodec(name, options);
    if (name == "t0") {
      return std::make_unique<PeekingDecoderCodec>(std::move(real));
    }
    return real;
  };
  const auto stream =
      GenerateStream(StreamFamily::kSequentialRuns, 5, 100, 32, 4);

  // Round-trip is blind to the bug...
  EXPECT_FALSE(
      CheckRoundTrip("t0", CodecOptions{}, stream, factory).has_value());
  // ...decoder-lockstep is not.
  const auto failure =
      CheckDecoderLockstep("t0", CodecOptions{}, stream, factory);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->message.find("split decoder"), std::string::npos);
}

TEST(RunnerTest, TransitionAccountingCatchesMiscountedEvaluator) {
  // A codec whose Reset() does not restore state breaks reset-replay:
  // the suite distinguishes that from a round-trip bug.
  class LeakyResetCodec final : public Codec {
   public:
    explicit LeakyResetCodec(CodecPtr inner)
        : Codec(inner->width()), inner_(std::move(inner)) {}
    std::string name() const override { return inner_->name(); }
    std::string display_name() const override {
      return inner_->display_name();
    }
    unsigned redundant_lines() const override {
      return inner_->redundant_lines();
    }
    BusState Encode(Word address, bool sel) override {
      return inner_->Encode(address + offset_++, sel);
    }
    Word Decode(const BusState& bus, bool sel) override {
      return inner_->Decode(bus, sel);
    }
    void Reset() override { inner_->Reset(); }  // offset_ leaks on purpose

   private:
    CodecPtr inner_;
    Word offset_ = 0;
  };

  const CodecFactoryFn factory = [](const std::string& name,
                                    const CodecOptions& options) -> CodecPtr {
    CodecPtr real = MakeCodec(name, options);
    if (name == "binary") {
      return std::make_unique<LeakyResetCodec>(std::move(real));
    }
    return real;
  };
  const auto stream =
      GenerateStream(StreamFamily::kUniformRandom, 77, 100, 32, 4);
  const auto failure = CheckResetReplay("binary", CodecOptions{}, stream,
                                        factory);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->message.find("Reset()"), std::string::npos);
}

}  // namespace
}  // namespace abenc::verify
