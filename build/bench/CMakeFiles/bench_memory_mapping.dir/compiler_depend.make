# Empty compiler generated dependencies file for bench_memory_mapping.
# This may be replaced when dependencies are built.
