#include "analysis/analytical.h"

#include <cmath>
#include <stdexcept>

namespace abenc {

double Binomial(unsigned n, unsigned k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

double BusInvertEta(unsigned width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("bus width must be in [1, 64]");
  }
  // Eq. 5: (1/2^N) * sum_{k=0}^{N/2} k * C(N+1, k). With N+1 lines and the
  // majority decision, the per-cycle transition count is min(H, N+1-H)
  // whose distribution over 2^N equally likely candidate patterns is
  // C(N+1, k) for k <= N/2 (each unordered {H, N+1-H} pair collapses onto
  // its smaller member).
  double sum = 0.0;
  for (unsigned k = 0; k <= width / 2; ++k) {
    sum += static_cast<double>(k) * Binomial(width + 1, k);
  }
  return sum / std::exp2(static_cast<double>(width));
}

double BinaryRandomTransitions(unsigned width) {
  return static_cast<double>(width) / 2.0;
}

double BinaryCountingTransitions(unsigned width, Word stride) {
  if (!IsPowerOfTwo(stride)) {
    throw std::invalid_argument("stride must be a power of two");
  }
  const unsigned s = Log2(stride);
  if (s >= width) {
    throw std::invalid_argument("stride must be below the bus span");
  }
  // Bit s toggles every increment, bit s+1 every second, ... Bits below s
  // never change.
  return 2.0 * (1.0 - std::exp2(-static_cast<double>(width - s)));
}

std::vector<Table1Row> AnalyticalTable1(unsigned width, Word stride) {
  const double n = static_cast<double>(width);
  const double random_binary = BinaryRandomTransitions(width);
  const double eta = BusInvertEta(width);
  const double counting = BinaryCountingTransitions(width, stride);

  std::vector<Table1Row> rows;
  // --- Unlimited out-of-sequence (uniform random) stream ---
  rows.push_back({"Out-of-Sequence", "Binary", random_binary,
                  random_binary / n, 1.0});
  // T0 degenerates to binary plus a quiet INC line (a random pair is
  // sequential with probability 2^-N, asymptotically zero).
  rows.push_back({"Out-of-Sequence", "T0", random_binary,
                  random_binary / (n + 1.0), 1.0});
  rows.push_back({"Out-of-Sequence", "Bus-Inv", eta, eta / (n + 1.0),
                  eta / random_binary});
  // --- Unlimited in-sequence stream ---
  rows.push_back({"In-Sequence", "Binary", counting, counting / n,
                  counting / counting});
  rows.push_back({"In-Sequence", "T0", 0.0, 0.0, 0.0});
  // A counting step flips at most ceil(log2) + carry lines, far below the
  // majority threshold for any realistic N, so bus-invert never inverts
  // and tracks binary exactly.
  rows.push_back({"In-Sequence", "Bus-Inv", counting, counting / (n + 1.0),
                  1.0});
  return rows;
}

double CrossoverAbscissa(const std::vector<double>& x,
                         const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (x.size() != a.size() || x.size() != b.size() || x.empty()) {
    throw std::invalid_argument("crossover: mismatched curve sizes");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double diff = a[i] - b[i];
    if (diff >= 0.0) {
      if (i == 0) return x[0];
      const double prev_diff = a[i - 1] - b[i - 1];
      const double t = prev_diff / (prev_diff - diff);  // prev_diff < 0
      return x[i - 1] + t * (x[i] - x[i - 1]);
    }
  }
  return -1.0;
}

}  // namespace abenc
