src/sim/CMakeFiles/abenc_sim.dir/programs_extra.cpp.o: \
 /root/repo/src/sim/programs_extra.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/programs.h
