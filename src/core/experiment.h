// Batch evaluation: run a set of codes over a set of streams and collect
// the full result matrix — the API behind every table bench, exposed so
// downstream users can build their own studies without re-writing the
// bookkeeping.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"

namespace abenc {

/// One stream under study.
struct NamedStream {
  std::string name;               // e.g. the benchmark name
  std::vector<BusAccess> accesses;
};

/// The matrix cell for (stream, code).
struct ComparisonCell {
  EvalResult result;
  double savings_percent = 0.0;  // vs the binary reference on that stream
};

/// One stream's row: the binary reference plus a cell per code.
struct ComparisonRow {
  std::string stream_name;
  EvalResult binary;
  std::vector<ComparisonCell> cells;  // parallel to the codec name list
};

/// Aggregate of a full comparison.
struct Comparison {
  std::vector<std::string> codec_names;
  std::vector<ComparisonRow> rows;

  /// Paper-style column averages of the per-stream savings percentages.
  std::vector<double> average_savings() const;
  /// Average of the binary rows' in-sequence percentages.
  double average_in_sequence_percent() const;
};

/// Run every named code over every stream (from codec reset each time,
/// decode-verified). `configure` may adjust the options per codec name
/// (e.g. a stride per bus); by default all codes share `options`.
Comparison RunComparison(
    const std::vector<std::string>& codec_names,
    const std::vector<NamedStream>& streams, const CodecOptions& options,
    const std::function<void(const std::string&, CodecOptions&)>& configure =
        nullptr);

}  // namespace abenc
