# Empty compiler generated dependencies file for verilog_vcd_test.
# This may be replaced when dependencies are built.
