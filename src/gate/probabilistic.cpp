#include "gate/probabilistic.h"

#include <cmath>
#include <stdexcept>

namespace abenc::gate {
namespace {

double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

ActivityEstimate EstimateActivity(
    const Netlist& netlist, const std::map<NetId, InputActivity>& inputs,
    unsigned max_iterations, double tolerance) {
  netlist.Validate();
  const std::size_t n = netlist.net_count();
  ActivityEstimate estimate;
  estimate.probability.assign(n, 0.0);
  estimate.density.assign(n, 0.0);
  auto& p = estimate.probability;
  auto& d = estimate.density;

  p[netlist.Const(true)] = 1.0;

  for (NetId input : netlist.inputs()) {
    const auto it = inputs.find(input);
    if (it == inputs.end()) {
      throw std::invalid_argument("missing activity for primary input '" +
                                  netlist.nets()[input].name + "'");
    }
    p[input] = Clamp01(it->second.probability);
    d[input] = it->second.density;
  }

  // Flop outputs start at the reset state (0, quiet) and iterate to a
  // fixed point through the combinational propagation below.
  for (unsigned iteration = 0; iteration < max_iterations; ++iteration) {
    for (NetId id : netlist.gate_order()) {
      const auto& info = netlist.nets()[id];
      const auto pa = [&](unsigned i) { return p[info.in[i]]; };
      const auto da = [&](unsigned i) { return d[info.in[i]]; };
      switch (info.kind) {
        case CellKind::kInv:
          p[id] = 1.0 - pa(0);
          d[id] = da(0);
          break;
        case CellKind::kBuf:
          p[id] = pa(0);
          d[id] = da(0);
          break;
        case CellKind::kAnd2:
        case CellKind::kNand2: {
          const double prob = pa(0) * pa(1);
          p[id] = info.kind == CellKind::kAnd2 ? prob : 1.0 - prob;
          d[id] = da(0) * pa(1) + da(1) * pa(0);
          break;
        }
        case CellKind::kOr2:
        case CellKind::kNor2: {
          const double prob = pa(0) + pa(1) - pa(0) * pa(1);
          p[id] = info.kind == CellKind::kOr2 ? prob : 1.0 - prob;
          d[id] = da(0) * (1.0 - pa(1)) + da(1) * (1.0 - pa(0));
          break;
        }
        case CellKind::kXor2:
        case CellKind::kXnor2: {
          const double prob = pa(0) + pa(1) - 2.0 * pa(0) * pa(1);
          p[id] = info.kind == CellKind::kXor2 ? prob : 1.0 - prob;
          d[id] = da(0) + da(1);  // boolean difference is 1 on both pins
          break;
        }
        case CellKind::kMux2: {
          // f = sel ? b : a   with pins (a, b, sel).
          const double ps = pa(2);
          p[id] = (1.0 - ps) * pa(0) + ps * pa(1);
          const double p_differs =
              pa(0) * (1.0 - pa(1)) + pa(1) * (1.0 - pa(0));
          d[id] = da(0) * (1.0 - ps) + da(1) * ps + da(2) * p_differs;
          break;
        }
        case CellKind::kDff:
          throw std::logic_error("flop in combinational order");
      }
      p[id] = Clamp01(p[id]);
      // Zero-delay semantics: a net switches at most once per cycle, and
      // its long-run toggle rate cannot exceed 2*min(P, 1-P). Without
      // this cap the boolean-difference sum explodes through XOR trees.
      d[id] = std::min(d[id], 2.0 * std::min(p[id], 1.0 - p[id]));
    }

    // Register transfer with temporal independence at the boundary.
    // Successive averaging damps oscillating feedback loops (a toggle
    // flop would otherwise flip between 0 and 1 forever).
    double delta = 0.0;
    for (const Netlist::Flop& flop : netlist.flops()) {
      const double new_p = 0.5 * (p[flop.q] + p[flop.d]);
      const double new_d = 2.0 * new_p * (1.0 - new_p);
      delta = std::max(delta, std::abs(new_p - p[flop.q]));
      delta = std::max(delta, std::abs(new_d - d[flop.q]));
      p[flop.q] = new_p;
      d[flop.q] = new_d;
    }
    if (netlist.flop_count() == 0 || delta < tolerance) break;
  }
  return estimate;
}

ActivityEstimate EstimateActivityUniform(const Netlist& netlist,
                                         const InputActivity& activity) {
  std::map<NetId, InputActivity> inputs;
  for (NetId input : netlist.inputs()) inputs[input] = activity;
  return EstimateActivity(netlist, inputs);
}

PowerReport PowerFromActivity(const Netlist& netlist,
                              const ActivityEstimate& activity,
                              double frequency_hz, double vdd) {
  PowerReport report;
  std::vector<bool> is_output(netlist.net_count(), false);
  for (const Netlist::Output& o : netlist.outputs()) is_output[o.net] = true;
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const double alpha = activity.density[id];
    if (alpha <= 0.0) continue;
    const double cap_f = netlist.NetCapacitancePf(id) * 1e-12;
    const double watts = 0.5 * cap_f * vdd * vdd * frequency_hz * alpha;
    (is_output[id] ? report.output_mw : report.core_mw) += watts * 1e3;
  }
  report.total_mw = report.core_mw + report.output_mw;
  return report;
}

}  // namespace abenc::gate
