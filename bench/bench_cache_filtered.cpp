// Extension (the paper's future-work scenario): what do the codes buy on
// an external address bus *behind* split L1 caches? Only misses reach the
// bus, as line addresses, so the natural stride is the line size and the
// stream is far less sequential than the raw fetch stream — the regime
// the paper's own 63%/11% measurements live in.
#include <iostream>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "sim/cache.h"
#include "sim/program_library.h"

int main() {
  using namespace abenc;
  using sim::CacheConfig;

  // Small split L1s (4 KiB I / 4 KiB D, 16-byte lines, 2-way), a
  // mid-1990s embedded configuration.
  const CacheConfig icache{16, 128, 2};
  const CacheConfig dcache{16, 128, 2};

  CodecOptions options;
  options.stride = icache.line_bytes;  // the external bus steps by lines

  const std::vector<std::string> codes = {"t0", "bus-invert", "t0-bi",
                                          "dual-t0-bi"};
  std::vector<std::string> headers = {"Benchmark", "Ext. refs", "I$ miss",
                                      "D$ miss", "In-Seq"};
  for (const auto& name : codes) {
    headers.push_back(MakeCodec(name, options)->display_name());
  }
  TextTable table(std::move(headers));

  std::cout << "Extension: codes on the post-L1 external multiplexed bus\n"
            << "(4 KiB + 4 KiB split L1, 16 B lines, 2-way LRU, "
               "write-back;\nstride = line size; savings vs binary)\n\n";

  std::vector<double> sums(codes.size(), 0.0);
  double in_seq_sum = 0.0;
  std::size_t rows = 0;
  for (const sim::BenchmarkProgram& program : sim::BenchmarkPrograms()) {
    const sim::CachedProgramTraces cached =
        sim::RunBenchmarkWithCaches(program, icache, dcache);
    const auto accesses = cached.external.multiplexed.ToBusAccesses();
    if (accesses.size() < 16) continue;  // fully cache-resident kernel

    auto binary = MakeCodec("binary", options);
    const EvalResult base =
        Evaluate(*binary, accesses, options.stride, true);

    std::vector<std::string> row = {
        program.name, FormatCount(static_cast<long long>(accesses.size())),
        FormatPercent(100.0 * cached.icache_miss_rate),
        FormatPercent(100.0 * cached.dcache_miss_rate),
        FormatPercent(base.in_sequence_percent)};
    in_seq_sum += base.in_sequence_percent;
    for (std::size_t c = 0; c < codes.size(); ++c) {
      auto codec = MakeCodec(codes[c], options);
      const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
      const double savings =
          SavingsPercent(r.transitions, base.transitions);
      sums[c] += savings;
      row.push_back(FormatPercent(savings));
    }
    table.AddRow(std::move(row));
    ++rows;
  }

  std::vector<std::string> average = {"Average", "", "", "",
                                      FormatPercent(in_seq_sum /
                                                    static_cast<double>(rows))};
  for (double s : sums) {
    average.push_back(FormatPercent(s / static_cast<double>(rows)));
  }
  table.AddRule();
  table.AddRow(std::move(average));
  std::cout << table.ToString();
  std::cout << "\nBehind a cache the sequential runs shorten and the data\n"
               "bus turns bursty; the T0-family savings shrink towards the\n"
               "paper's measured magnitudes while bus-invert holds up —\n"
               "the hierarchy-dependence the paper flags as future work.\n\n";

  // Second sweep: how the external-bus picture moves with the L1 size
  // (aggregated over all nine benchmarks).
  TextTable sweep({"L1 size (I+D)", "Ext. refs", "In-Seq", "T0", "T0_BI",
                   "Dual T0_BI"});
  for (unsigned sets : {32u, 128u, 512u}) {
    const CacheConfig config{16, sets, 2};
    long long binary_total = 0;
    long long t0_total = 0;
    long long t0bi_total = 0;
    long long dual_total = 0;
    std::size_t refs = 0;
    double in_seq_weighted = 0.0;
    for (const sim::BenchmarkProgram& program : sim::BenchmarkPrograms()) {
      const sim::CachedProgramTraces cached =
          sim::RunBenchmarkWithCaches(program, config, config);
      const auto accesses = cached.external.multiplexed.ToBusAccesses();
      if (accesses.size() < 16) continue;
      refs += accesses.size();
      const auto eval = [&](const char* name) {
        auto codec = MakeCodec(name, options);
        return Evaluate(*codec, accesses, options.stride, true).transitions;
      };
      auto binary = MakeCodec("binary", options);
      const EvalResult base =
          Evaluate(*binary, accesses, options.stride, true);
      binary_total += base.transitions;
      in_seq_weighted += base.in_sequence_percent *
                         static_cast<double>(accesses.size());
      t0_total += eval("t0");
      t0bi_total += eval("t0-bi");
      dual_total += eval("dual-t0-bi");
    }
    sweep.AddRow(
        {std::to_string(2 * config.capacity_bytes() / 1024) + " KiB",
         FormatCount(static_cast<long long>(refs)),
         FormatPercent(in_seq_weighted / static_cast<double>(refs)),
         FormatPercent(SavingsPercent(t0_total, binary_total)),
         FormatPercent(SavingsPercent(t0bi_total, binary_total)),
         FormatPercent(SavingsPercent(dual_total, binary_total))});
  }
  std::cout << "Aggregate external-bus savings vs L1 capacity:\n\n"
            << sweep.ToString()
            << "\nSmall caches thrash: the external bus carries conflict\n"
               "misses with little order and every code struggles. Large\n"
               "caches leave mostly cold misses — sequential sweeps of\n"
               "fresh data — so line-granular runs reappear and the T0\n"
               "family recovers. Code choice depends on where in the\n"
               "hierarchy the bus sits: the paper's closing point.\n";
  return 0;
}
