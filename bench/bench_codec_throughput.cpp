// google-benchmark microbenchmarks: software encode/decode throughput of
// every code — the cost a simulator or trace-processing pipeline pays per
// address. (The hardware cost is what Tables 8/9 measure; this is the
// library-user cost.)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/codec_factory.h"
#include "core/codec_kernel.h"
#include "core/stream_evaluator.h"
#include "trace/synthetic.h"

namespace {

using namespace abenc;

const std::vector<BusAccess>& Stream() {
  static const std::vector<BusAccess> stream = [] {
    SyntheticGenerator gen(5);
    return gen.MultiplexedLike(1 << 14, 0.35, 4, 32).ToBusAccesses();
  }();
  return stream;
}

void EncodeThroughput(benchmark::State& state, const std::string& name) {
  CodecOptions options;
  auto codec = MakeCodec(name, options);
  const auto& stream = Stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const BusAccess& access = stream[i];
    benchmark::DoNotOptimize(codec->Encode(access.address, access.sel));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

// The batched hot path: one virtual EncodeBlock dispatch per chunk of
// kDefaultChunkSize words instead of one virtual Encode per word. The
// items/s ratio of encode-block/<name> over encode/<name> is the
// devirtualization win (the regression gate wants >= 3x for the
// hand-specialized binary/gray/t0 kernels).
void EncodeBlockThroughput(benchmark::State& state, const std::string& name) {
  CodecOptions options;
  auto codec = MakeCodec(name, options);
  const auto& stream = Stream();
  std::vector<BusState> out(kDefaultChunkSize);
  for (auto _ : state) {
    for (std::size_t offset = 0; offset < stream.size();
         offset += kDefaultChunkSize) {
      const std::size_t n =
          std::min(kDefaultChunkSize, stream.size() - offset);
      codec->EncodeBlock(std::span(stream).subspan(offset, n),
                         std::span(out).first(n));
      benchmark::DoNotOptimize(out.data());
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}

void RoundTripThroughput(benchmark::State& state, const std::string& name) {
  CodecOptions options;
  auto codec = MakeCodec(name, options);
  const auto& stream = Stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const BusAccess& access = stream[i];
    const BusState bus = codec->Encode(access.address, access.sel);
    benchmark::DoNotOptimize(codec->Decode(bus, access.sel));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : abenc::AllCodecNames()) {
    benchmark::RegisterBenchmark(("encode/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   EncodeThroughput(s, name);
                                 });
    benchmark::RegisterBenchmark(("encode-block/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   EncodeBlockThroughput(s, name);
                                 });
    benchmark::RegisterBenchmark(("roundtrip/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   RoundTripThroughput(s, name);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
