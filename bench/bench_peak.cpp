// Extension: *peak* per-cycle switching — the metric bus-invert was
// originally designed for (it bounds simultaneous switching noise and
// worst-case IR drop, not just average power). Measured per code on the
// benchmark multiplexed streams.
#include <algorithm>
#include <iostream>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "sim/program_library.h"

int main() {
  using namespace abenc;

  const CodecOptions options;
  const std::vector<std::string> codes = {"binary", "bus-invert", "t0",
                                          "t0-bi", "dual-t0-bi",
                                          "couple-invert"};

  std::vector<std::string> headers = {"Benchmark"};
  for (const auto& name : codes) headers.push_back(name);
  TextTable table(std::move(headers));

  std::vector<int> worst(codes.size(), 0);
  for (const sim::BenchmarkProgram& program : sim::BenchmarkPrograms()) {
    const sim::ProgramTraces traces = sim::RunBenchmark(program);
    const auto accesses = traces.multiplexed.ToBusAccesses();
    std::vector<std::string> row = {program.name};
    for (std::size_t c = 0; c < codes.size(); ++c) {
      auto codec = MakeCodec(codes[c], options);
      const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
      worst[c] = std::max(worst[c], r.peak_transitions);
      row.push_back(FormatCount(r.peak_transitions));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> bottom = {"Worst"};
  for (int w : worst) bottom.push_back(FormatCount(w));
  table.AddRule();
  table.AddRow(std::move(bottom));

  std::cout << "Extension: peak per-cycle line toggles on the multiplexed\n"
               "streams (32 data lines + redundant lines; simultaneous-\n"
               "switching noise proxy)\n\n"
            << table.ToString()
            << "\nOnly the majority-voting invert codes *bound* the peak\n"
               "(bus-invert <= 17 of its 33 lines, and T0_BI keeps that\n"
               "bound); plain T0 cuts the average dramatically but a\n"
               "worst-case jump still swings most of the bus, and the\n"
               "coupling-optimised OE-invert trades peak for coupling\n"
               "energy. When di/dt limits matter, the mixed codes are the\n"
               "ones that deliver both.\n";
  return 0;
}
