#include "channel/secded.h"

#include <stdexcept>
#include <string>

namespace abenc {

SecdedCode::SecdedCode(unsigned data_lines, unsigned redundant_lines)
    : data_lines_(data_lines), redundant_lines_(redundant_lines),
      message_bits_(data_lines + redundant_lines) {
  if (message_bits_ == 0 || message_bits_ > 120 || data_lines > 64 ||
      redundant_lines > 64) {
    throw std::invalid_argument("SECDED message must span 1..120 lines, got " +
                                std::to_string(message_bits_));
  }
  unsigned r = 2;
  while ((1u << r) < message_bits_ + r + 1) ++r;
  hamming_bits_ = r;

  const unsigned codeword_bits = message_bits_ + r;
  position_of_message_.reserve(message_bits_);
  message_at_position_.assign(codeword_bits + 1, -1);
  group_lines_.assign(r, 0);
  group_redundant_.assign(r, 0);
  for (unsigned pos = 1, msg = 0; pos <= codeword_bits; ++pos) {
    if (IsPowerOfTwo(pos)) continue;  // check-bit position
    position_of_message_.push_back(pos);
    message_at_position_[pos] = static_cast<std::int32_t>(msg);
    for (unsigned j = 0; j < r; ++j) {
      if ((pos >> j) & 1) {
        if (msg < data_lines_) {
          group_lines_[j] |= Word{1} << msg;
        } else {
          group_redundant_[j] |= Word{1} << (msg - data_lines_);
        }
      }
    }
    ++msg;
  }
}

void SecdedCode::FlipMessageBit(BusState& coded, unsigned i) const {
  if (i < data_lines_) {
    coded.lines ^= Word{1} << i;
  } else {
    coded.redundant ^= Word{1} << (i - data_lines_);
  }
}

Word SecdedCode::Syndrome(const BusState& coded, Word check) const {
  // Bit j of the syndrome is the parity of codeword positions with bit j
  // set — message bits via the group masks, plus check bit j itself
  // (which sits at position 2^j). Zero for a valid codeword; for a
  // single flipped bit, the flipped position.
  Word syndrome = 0;
  for (unsigned j = 0; j < hamming_bits_; ++j) {
    const int ones = PopCount(coded.lines & group_lines_[j]) +
                     PopCount(coded.redundant & group_redundant_[j]) +
                     static_cast<int>((check >> j) & 1);
    syndrome |= static_cast<Word>(ones & 1) << j;
  }
  return syndrome;
}

bool SecdedCode::OverallParity(const BusState& coded, Word check) const {
  const int ones =
      PopCount(coded.lines & LowMask(data_lines_)) +
      (redundant_lines_ == 0
           ? 0
           : PopCount(coded.redundant & LowMask(redundant_lines_))) +
      PopCount(check & LowMask(hamming_bits_ + 1));
  return (ones & 1) != 0;
}

Word SecdedCode::ComputeCheck(const BusState& coded) const {
  // With the check bits still zero the syndrome is exactly the check-bit
  // vector that zeroes it.
  Word check = Syndrome(coded, 0);
  // The overall parity line (bit r) makes the whole codeword even.
  if (OverallParity(coded, check)) check |= Word{1} << hamming_bits_;
  return check;
}

SecdedOutcome SecdedCode::CorrectInPlace(BusState& coded, Word& check) const {
  const Word syndrome = Syndrome(coded, check);
  const bool parity_odd = OverallParity(coded, check);

  if (syndrome == 0) {
    if (!parity_odd) return SecdedOutcome::kClean;
    // Only the overall parity line itself flipped.
    check ^= Word{1} << hamming_bits_;
    return SecdedOutcome::kCorrectedCheck;
  }
  if (!parity_odd) return SecdedOutcome::kDoubleError;
  if (syndrome >= message_at_position_.size()) {
    // The syndrome points outside the codeword: at least two errors.
    return SecdedOutcome::kDoubleError;
  }
  const std::int32_t msg = message_at_position_[syndrome];
  if (msg >= 0) {
    FlipMessageBit(coded, static_cast<unsigned>(msg));
    return SecdedOutcome::kCorrectedMessage;
  }
  // Power-of-two position: one of the Hamming check lines flipped.
  check ^= Word{1} << Log2(syndrome);
  return SecdedOutcome::kCorrectedCheck;
}

Word ComputeParity(const BusState& coded, unsigned data_lines,
                   unsigned redundant_lines) {
  const int ones =
      PopCount(coded.lines & LowMask(data_lines)) +
      (redundant_lines == 0
           ? 0
           : PopCount(coded.redundant & LowMask(redundant_lines)));
  return static_cast<Word>(ones & 1);
}

}  // namespace abenc
