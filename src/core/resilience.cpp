#include "core/resilience.h"

#include <random>
#include <stdexcept>
#include <vector>

namespace abenc {

UpsetResult MeasureSingleUpset(const std::string& codec_name,
                               const CodecOptions& options,
                               std::span<const BusAccess> stream,
                               std::size_t cycle, unsigned line) {
  if (cycle >= stream.size()) {
    throw std::out_of_range("injection cycle beyond the stream");
  }
  auto encoder = MakeCodec(codec_name, options);
  if (line >= encoder->total_lines()) {
    throw std::out_of_range("injection line beyond the coded bus");
  }

  // Encode the whole stream, flipping one line of one state in flight.
  std::vector<BusState> wire;
  wire.reserve(stream.size());
  for (const BusAccess& access : stream) {
    wire.push_back(encoder->Encode(access.address, access.sel));
  }
  if (line < encoder->width()) {
    wire[cycle].lines ^= Word{1} << line;
  } else {
    wire[cycle].redundant ^= Word{1} << (line - encoder->width());
  }

  // Decode with a fresh receiver and diff against the original stream.
  auto decoder = MakeCodec(codec_name, options);
  const Word mask = LowMask(decoder->width());
  UpsetResult result;
  std::size_t last_mismatch = cycle;
  for (std::size_t t = 0; t < stream.size(); ++t) {
    const Word decoded = decoder->Decode(wire[t], stream[t].sel);
    if (t >= cycle && decoded != (stream[t].address & mask)) {
      ++result.corrupted_addresses;
      last_mismatch = t;
    }
  }
  result.recovery_cycles = last_mismatch - cycle;
  result.resynchronised = last_mismatch + 1 < stream.size();
  return result;
}

double AverageUpsetCorruption(const std::string& codec_name,
                              const CodecOptions& options,
                              std::span<const BusAccess> stream,
                              std::size_t injections, std::uint64_t seed) {
  if (stream.empty() || injections == 0) return 0.0;
  auto probe = MakeCodec(codec_name, options);
  const unsigned lines = probe->total_lines();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick_cycle(
      0, stream.size() - 1);
  std::uniform_int_distribution<unsigned> pick_line(0, lines - 1);
  double total = 0.0;
  for (std::size_t i = 0; i < injections; ++i) {
    total += static_cast<double>(
        MeasureSingleUpset(codec_name, options, stream, pick_cycle(rng),
                           pick_line(rng))
            .corrupted_addresses);
  }
  return total / static_cast<double>(injections);
}

}  // namespace abenc
