// Differential fuzzing of the assembler + CPU: random straight-line
// programs are generated together with an independent architectural model
// maintained by the generator itself; after execution every register and
// the memory image must match the model exactly. This exercises the whole
// toolchain (text -> assembler -> encoding -> decode -> execute) on tens
// of thousands of instructions per seed.
//
// Plus: golden-value regression tests pinning the exact results the nine
// benchmark kernels compute, so any semantic drift in the CPU or
// assembler is caught immediately.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/disassembler.h"
#include "sim/memory.h"
#include "sim/program_library.h"

namespace abenc::sim {
namespace {

// ---------------------------------------------------------------------------
// Random program generator with a built-in architectural model
// ---------------------------------------------------------------------------

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(std::uint64_t seed) : rng_(seed) {
    source_ << ".data\nbuf: .space 256\n.text\n";
    source_ << "la $s0, buf\n";
    regs_[16] = kDataBase;  // $s0 holds the buffer base in the model too
  }

  /// Emit `count` random instructions (straight-line, no control flow).
  void Generate(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      switch (rng_() % 12) {
        case 0: ThreeReg(); break;
        case 1: Shift(); break;
        case 2: ImmediateArith(); break;
        case 3: ImmediateLogic(); break;
        case 4: Lui(); break;
        case 5: MultDiv(); break;
        case 6: StoreWord(); break;
        case 7: LoadWord(); break;
        case 8: StoreByte(); break;
        case 9: LoadByte(); break;
        case 10: StoreHalf(); break;
        default: LoadHalf(); break;
      }
    }
    source_ << "halt\n";
  }

  std::string source() const { return source_.str(); }
  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  const std::uint8_t* buffer() const { return buffer_; }

 private:
  // Writable scratch registers: $v0-$v1, $a0-$a3, $t0-$t9, $s1-$s7.
  unsigned PickDest() {
    static constexpr unsigned kPool[] = {2,  3,  4,  5,  6,  7,  8,  9,
                                         10, 11, 12, 13, 14, 15, 17, 18,
                                         19, 20, 21, 22, 23, 24, 25};
    return kPool[rng_() % std::size(kPool)];
  }
  unsigned PickSource() {
    return rng_() % 4 == 0 ? 0 : PickDest();  // sometimes $zero
  }
  static const char* Name(unsigned r) {
    static const char* kNames[32] = {
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
        "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
        "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
        "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};
    return kNames[r];
  }
  void Write(unsigned r, std::uint32_t v) {
    if (r != 0) regs_[r] = v;
  }

  void ThreeReg() {
    const unsigned d = PickDest();
    const unsigned s = PickSource();
    const unsigned t = PickSource();
    const std::uint32_t a = regs_[s];
    const std::uint32_t b = regs_[t];
    switch (rng_() % 8) {
      case 0: Emit3("addu", d, s, t); Write(d, a + b); break;
      case 1: Emit3("subu", d, s, t); Write(d, a - b); break;
      case 2: Emit3("and", d, s, t); Write(d, a & b); break;
      case 3: Emit3("or", d, s, t); Write(d, a | b); break;
      case 4: Emit3("xor", d, s, t); Write(d, a ^ b); break;
      case 5: Emit3("nor", d, s, t); Write(d, ~(a | b)); break;
      case 6:
        Emit3("slt", d, s, t);
        Write(d, static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                     ? 1
                     : 0);
        break;
      default: Emit3("sltu", d, s, t); Write(d, a < b ? 1 : 0); break;
    }
  }

  void Shift() {
    const unsigned d = PickDest();
    const unsigned t = PickSource();
    const unsigned shamt = rng_() % 32;
    const std::uint32_t v = regs_[t];
    switch (rng_() % 3) {
      case 0:
        source_ << "sll " << Name(d) << ", " << Name(t) << ", " << shamt
                << "\n";
        Write(d, v << shamt);
        break;
      case 1:
        source_ << "srl " << Name(d) << ", " << Name(t) << ", " << shamt
                << "\n";
        Write(d, v >> shamt);
        break;
      default:
        source_ << "sra " << Name(d) << ", " << Name(t) << ", " << shamt
                << "\n";
        Write(d, static_cast<std::uint32_t>(
                     static_cast<std::int32_t>(v) >> static_cast<int>(shamt)));
        break;
    }
  }

  void ImmediateArith() {
    const unsigned d = PickDest();
    const unsigned s = PickSource();
    const std::int32_t imm =
        static_cast<std::int32_t>(rng_() % 65536) - 32768;
    source_ << "addiu " << Name(d) << ", " << Name(s) << ", " << imm << "\n";
    Write(d, regs_[s] + static_cast<std::uint32_t>(imm));
  }

  void ImmediateLogic() {
    const unsigned d = PickDest();
    const unsigned s = PickSource();
    const std::uint32_t imm = rng_() % 65536;
    switch (rng_() % 3) {
      case 0:
        source_ << "andi " << Name(d) << ", " << Name(s) << ", " << imm
                << "\n";
        Write(d, regs_[s] & imm);
        break;
      case 1:
        source_ << "ori " << Name(d) << ", " << Name(s) << ", " << imm
                << "\n";
        Write(d, regs_[s] | imm);
        break;
      default:
        source_ << "xori " << Name(d) << ", " << Name(s) << ", " << imm
                << "\n";
        Write(d, regs_[s] ^ imm);
        break;
    }
  }

  void Lui() {
    const unsigned d = PickDest();
    const std::uint32_t imm = rng_() % 65536;
    source_ << "lui " << Name(d) << ", " << imm << "\n";
    Write(d, imm << 16);
  }

  void MultDiv() {
    const unsigned d = PickDest();
    const unsigned s = PickSource();
    const unsigned t = PickSource();
    const std::uint32_t a = regs_[s];
    const std::uint32_t b = regs_[t];
    switch (rng_() % 3) {
      case 0: {  // mul pseudo: low 32 bits of signed product
        source_ << "mul " << Name(d) << ", " << Name(s) << ", " << Name(t)
                << "\n";
        const std::int64_t product =
            static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
            static_cast<std::int64_t>(static_cast<std::int32_t>(b));
        Write(d, static_cast<std::uint32_t>(product));
        break;
      }
      case 1: {  // multu + mfhi: high 32 bits of unsigned product
        source_ << "multu " << Name(s) << ", " << Name(t) << "\n";
        source_ << "mfhi " << Name(d) << "\n";
        const std::uint64_t product =
            static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
        Write(d, static_cast<std::uint32_t>(product >> 32));
        break;
      }
      default: {  // force a nonzero divisor, then divu + mflo
        const unsigned div = PickDest();
        source_ << "ori " << Name(div) << ", " << Name(t) << ", 1\n";
        const std::uint32_t divisor = b | 1;
        Write(div, divisor);
        source_ << "divu " << Name(s) << ", " << Name(div) << "\n";
        source_ << "mflo " << Name(d) << "\n";
        Write(d, a / divisor);
        break;
      }
    }
  }

  std::uint32_t PickOffset(unsigned alignment) {
    return (rng_() % (256 / alignment)) * alignment;
  }

  void StoreWord() {
    const unsigned t = PickSource();
    const std::uint32_t offset = PickOffset(4);
    source_ << "sw " << Name(t) << ", " << offset << "($s0)\n";
    for (unsigned i = 0; i < 4; ++i) {
      buffer_[offset + i] = static_cast<std::uint8_t>(regs_[t] >> (8 * i));
    }
  }

  void LoadWord() {
    const unsigned d = PickDest();
    const std::uint32_t offset = PickOffset(4);
    source_ << "lw " << Name(d) << ", " << offset << "($s0)\n";
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buffer_[offset + i]) << (8 * i);
    }
    Write(d, v);
  }

  void StoreByte() {
    const unsigned t = PickSource();
    const std::uint32_t offset = PickOffset(1);
    source_ << "sb " << Name(t) << ", " << offset << "($s0)\n";
    buffer_[offset] = static_cast<std::uint8_t>(regs_[t]);
  }

  void LoadByte() {
    const unsigned d = PickDest();
    const std::uint32_t offset = PickOffset(1);
    const bool is_unsigned = rng_() % 2 == 0;
    source_ << (is_unsigned ? "lbu " : "lb ") << Name(d) << ", " << offset
            << "($s0)\n";
    const std::uint8_t byte = buffer_[offset];
    Write(d, is_unsigned ? byte
                         : static_cast<std::uint32_t>(
                               static_cast<std::int8_t>(byte)));
  }

  void StoreHalf() {
    const unsigned t = PickSource();
    const std::uint32_t offset = PickOffset(2);
    source_ << "sh " << Name(t) << ", " << offset << "($s0)\n";
    buffer_[offset] = static_cast<std::uint8_t>(regs_[t]);
    buffer_[offset + 1] = static_cast<std::uint8_t>(regs_[t] >> 8);
  }

  void LoadHalf() {
    const unsigned d = PickDest();
    const std::uint32_t offset = PickOffset(2);
    const bool is_unsigned = rng_() % 2 == 0;
    source_ << (is_unsigned ? "lhu " : "lh ") << Name(d) << ", " << offset
            << "($s0)\n";
    const std::uint16_t half =
        static_cast<std::uint16_t>(buffer_[offset]) |
        static_cast<std::uint16_t>(buffer_[offset + 1] << 8);
    Write(d, is_unsigned ? half
                         : static_cast<std::uint32_t>(
                               static_cast<std::int16_t>(half)));
  }

  void Emit3(const char* op, unsigned d, unsigned s, unsigned t) {
    source_ << op << " " << Name(d) << ", " << Name(s) << ", " << Name(t)
            << "\n";
  }

  std::mt19937_64 rng_;
  std::ostringstream source_;
  std::uint32_t regs_[32] = {};
  std::uint8_t buffer_[256] = {};
};

class CpuFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzzTest, RandomProgramMatchesArchitecturalModel) {
  ProgramFuzzer fuzzer(GetParam());
  fuzzer.Generate(4000);

  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble(fuzzer.source()));
  ASSERT_EQ(cpu.Run(20000), StopReason::kBreak);

  for (unsigned r = 2; r < 26; ++r) {
    if (r == 16) continue;  // $s0: checked via memory addressing below
    EXPECT_EQ(cpu.reg(r), fuzzer.reg(r)) << "register " << r << " seed "
                                         << GetParam();
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    ASSERT_EQ(memory.LoadByte(kDataBase + i), fuzzer.buffer()[i])
        << "buf[" << i << "] seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// ---------------------------------------------------------------------------
// Golden results of the benchmark kernels
// ---------------------------------------------------------------------------

struct Golden {
  const char* program;
  std::uint64_t retired;
  const char* symbol;       // scalar result cell, or nullptr
  std::uint32_t value;      // its expected value
  const char* buffer;       // output buffer to checksum, or nullptr
  std::uint32_t checksum;   // fold of its first 512 bytes
};

std::uint32_t BufferChecksum(const Memory& memory, std::uint32_t base) {
  std::uint32_t sum = 0;
  for (std::uint32_t i = 0; i < 512; i += 4) {
    sum = sum * 31 + memory.LoadWord(base + i);
  }
  return sum;
}

class GoldenResultTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenResultTest, KernelComputesExactlyTheGoldenValue) {
  const Golden& golden = GetParam();
  const BenchmarkProgram& program = FindBenchmarkProgram(golden.program);
  const AssembledProgram assembled = Assemble(program.source);
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(assembled);
  ASSERT_EQ(cpu.Run(program.step_budget), StopReason::kBreak);
  EXPECT_EQ(cpu.retired_instructions(), golden.retired);
  if (golden.symbol != nullptr) {
    EXPECT_EQ(memory.LoadWord(assembled.Symbol(golden.symbol)),
              golden.value)
        << golden.symbol;
  }
  if (golden.buffer != nullptr) {
    EXPECT_EQ(BufferChecksum(memory, assembled.Symbol(golden.buffer)),
              golden.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GoldenResultTest,
    ::testing::Values(
        Golden{"gzip", 729082, nullptr, 0, "dst", 1788332079u},
        Golden{"gunzip", 110495, nullptr, 0, "out", 2226428309u},
        Golden{"ghostview", 121882, "lit", 3019, nullptr, 0},
        Golden{"espresso", 247252, "merges", 68, nullptr, 0},
        Golden{"nova", 166726, "cost", 317604, nullptr, 0},
        Golden{"jedi", 919357, "accept", 89, nullptr, 0},
        Golden{"latex", 238650, "nlines", 128, nullptr, 0},
        Golden{"matlab", 340088, "norm", 5450627, nullptr, 0},
        Golden{"oracle", 387611, "hits", 279, nullptr, 0},
        Golden{"fft", 58443, "chk", 3319228925u, nullptr, 0},
        Golden{"qsort", 86423, "sorted", 1, nullptr, 0},
        Golden{"dhry", 36034, "acc", 63008, nullptr, 0}),
    [](const auto& info) { return std::string(info.param.program); });

TEST(ExtendedProgramsTest, QsortActuallySorts) {
  // `sorted` is computed by the guest itself; double-check from the host
  // side that the array really is non-decreasing.
  const BenchmarkProgram& program = FindBenchmarkProgram("qsort");
  const AssembledProgram assembled = Assemble(program.source);
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(assembled);
  ASSERT_EQ(cpu.Run(program.step_budget), StopReason::kBreak);
  const std::uint32_t base = assembled.Symbol("arr");
  std::uint32_t prev = memory.LoadWord(base);
  for (std::uint32_t i = 1; i < 512; ++i) {
    const std::uint32_t cur = memory.LoadWord(base + i * 4);
    ASSERT_GE(cur, prev) << "index " << i;
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// Assembler <-> disassembler round trip over random instruction words
// ---------------------------------------------------------------------------

/// Emits random *canonical* instruction words: every don't-care field is
/// zeroed exactly as the assembler would emit it (sll's rs, jalr's
/// rd=31, break/syscall all-zero, ...), and control-flow targets land
/// inside [0, n] slots so the disassembler's synthetic labels resolve.
class InstructionFuzzer {
 public:
  explicit InstructionFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::vector<std::uint32_t> Generate(std::size_t count) {
    std::vector<std::uint32_t> words;
    for (std::size_t i = 0; i < count; ++i) {
      words.push_back(RandomWord(i, count));
    }
    return words;
  }

 private:
  unsigned Reg() { return static_cast<unsigned>(rng_() % 32); }
  std::uint16_t Imm() { return static_cast<std::uint16_t>(rng_()); }

  /// Branch displacement from slot `i` to a random slot in [0, n]
  /// (n = one past the last instruction, which also gets a label).
  std::uint16_t BranchDisp(std::size_t i, std::size_t n) {
    const auto slot = static_cast<std::int32_t>(rng_() % (n + 1));
    const auto disp = slot - static_cast<std::int32_t>(i + 1);
    return static_cast<std::uint16_t>(static_cast<std::int16_t>(disp));
  }

  std::uint32_t JumpField(std::size_t n) {
    const auto slot = static_cast<std::uint32_t>(rng_() % (n + 1));
    return (kTextBase >> 2) + slot;
  }

  std::uint32_t RandomWord(std::size_t i, std::size_t n) {
    switch (rng_() % 24) {
      case 0:
        return EncodeR(Funct::kSll, Reg(), 0, Reg(),
                       static_cast<unsigned>(rng_() % 32));
      case 1:
        return EncodeR(Funct::kSrl, Reg(), 0, Reg(),
                       static_cast<unsigned>(rng_() % 32));
      case 2:
        return EncodeR(Funct::kSra, Reg(), 0, Reg(),
                       static_cast<unsigned>(rng_() % 32));
      case 3: return EncodeR(Funct::kSllv, Reg(), Reg(), Reg());
      case 4: return EncodeR(Funct::kSrav, Reg(), Reg(), Reg());
      case 5: return EncodeR(Funct::kJr, 0, Reg(), 0);
      case 6: return EncodeR(Funct::kJalr, 31, Reg(), 0);
      case 7: return EncodeR(Funct::kMfhi, Reg(), 0, 0);
      case 8: return EncodeR(Funct::kMflo, Reg(), 0, 0);
      case 9: return EncodeR(Funct::kMult, 0, Reg(), Reg());
      case 10: return EncodeR(Funct::kDivu, 0, Reg(), Reg());
      case 11:
        return EncodeR(rng_() % 2 ? Funct::kBreak : Funct::kSyscall, 0, 0,
                       0);
      case 12: {
        static constexpr Funct kThreeReg[] = {
            Funct::kAdd, Funct::kAddu, Funct::kSub, Funct::kSubu,
            Funct::kAnd, Funct::kOr,   Funct::kXor, Funct::kNor,
            Funct::kSlt, Funct::kSltu};
        return EncodeR(kThreeReg[rng_() % std::size(kThreeReg)], Reg(),
                       Reg(), Reg());
      }
      case 13: {
        static constexpr Opcode kImmediate[] = {
            Opcode::kAddi, Opcode::kAddiu, Opcode::kSlti, Opcode::kSltiu,
            Opcode::kAndi, Opcode::kOri,   Opcode::kXori};
        return EncodeI(kImmediate[rng_() % std::size(kImmediate)], Reg(),
                       Reg(), Imm());
      }
      case 14: return EncodeI(Opcode::kLui, Reg(), 0, Imm());
      case 15: {
        static constexpr Opcode kMemory[] = {
            Opcode::kLb, Opcode::kLh,  Opcode::kLw, Opcode::kLbu,
            Opcode::kLhu, Opcode::kSb, Opcode::kSh, Opcode::kSw};
        return EncodeI(kMemory[rng_() % std::size(kMemory)], Reg(), Reg(),
                       Imm());
      }
      case 16:
        return EncodeI(Opcode::kBeq, Reg(), Reg(), BranchDisp(i, n));
      case 17:
        return EncodeI(Opcode::kBne, Reg(), Reg(), BranchDisp(i, n));
      case 18:
        return EncodeI(Opcode::kBlez, 0, Reg(), BranchDisp(i, n));
      case 19:
        return EncodeI(Opcode::kBgtz, 0, Reg(), BranchDisp(i, n));
      case 20:  // bltz (rt=0) / bgez (rt=1)
        return EncodeI(Opcode::kRegImm,
                       static_cast<unsigned>(rng_() % 2), Reg(),
                       BranchDisp(i, n));
      case 21: return EncodeJ(Opcode::kJ, JumpField(n));
      case 22: return EncodeJ(Opcode::kJal, JumpField(n));
      default: return EncodeR(Funct::kSrlv, Reg(), Reg(), Reg());
    }
  }

  std::mt19937_64 rng_;
};

class RoundTripFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzzTest, DisassembleThenReassembleIsBitIdentical) {
  InstructionFuzzer fuzzer(GetParam());
  AssembledProgram original;
  original.text = fuzzer.Generate(300);

  const std::string source = DisassembleProgram(original);
  const AssembledProgram reassembled = Assemble(source);

  ASSERT_EQ(reassembled.text.size(), original.text.size())
      << "seed " << GetParam();
  for (std::size_t i = 0; i < original.text.size(); ++i) {
    ASSERT_EQ(reassembled.text[i], original.text[i])
        << "word " << i << " seed " << GetParam() << ": '"
        << Disassemble(Instruction{original.text[i]},
                       kTextBase + static_cast<std::uint32_t>(i * 4))
        << "'";
  }
  EXPECT_TRUE(reassembled.data.empty());

  // The round trip is idempotent: disassembling the reassembled program
  // reproduces the same source (labels and all).
  EXPECT_EQ(DisassembleProgram(reassembled), source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 1999u, 0xABCDu));

TEST(RoundTripFuzzTest, EveryMnemonicRoundTrips) {
  // One canonical word per mnemonic, deterministic: full ISA coverage
  // independent of what the seeds above happen to draw.
  AssembledProgram original;
  original.text = {
      EncodeR(Funct::kSll, 8, 0, 9, 4),
      EncodeR(Funct::kSrl, 8, 0, 9, 31),
      EncodeR(Funct::kSra, 8, 0, 9, 1),
      EncodeR(Funct::kSllv, 8, 10, 9),
      EncodeR(Funct::kSrlv, 8, 10, 9),
      EncodeR(Funct::kSrav, 8, 10, 9),
      EncodeR(Funct::kJr, 0, 31, 0),
      EncodeR(Funct::kJalr, 31, 8, 0),
      EncodeR(Funct::kSyscall, 0, 0, 0),
      EncodeR(Funct::kMfhi, 8, 0, 0),
      EncodeR(Funct::kMflo, 9, 0, 0),
      EncodeR(Funct::kMult, 0, 8, 9),
      EncodeR(Funct::kMultu, 0, 8, 9),
      EncodeR(Funct::kDiv, 0, 8, 9),
      EncodeR(Funct::kDivu, 0, 8, 9),
      EncodeR(Funct::kAdd, 8, 9, 10),
      EncodeR(Funct::kAddu, 8, 9, 10),
      EncodeR(Funct::kSub, 8, 9, 10),
      EncodeR(Funct::kSubu, 8, 9, 10),
      EncodeR(Funct::kAnd, 8, 9, 10),
      EncodeR(Funct::kOr, 8, 9, 10),
      EncodeR(Funct::kXor, 8, 9, 10),
      EncodeR(Funct::kNor, 8, 9, 10),
      EncodeR(Funct::kSlt, 8, 9, 10),
      EncodeR(Funct::kSltu, 8, 9, 10),
      EncodeJ(Opcode::kJ, (kTextBase >> 2) + 0),
      EncodeJ(Opcode::kJal, (kTextBase >> 2) + 40),
      EncodeI(Opcode::kBeq, 8, 9, 12),
      EncodeI(Opcode::kBne, 8, 9, static_cast<std::uint16_t>(-28)),
      EncodeI(Opcode::kBlez, 0, 8, 10),
      EncodeI(Opcode::kBgtz, 0, 8, 9),
      EncodeI(Opcode::kRegImm, 0, 8, 8),   // bltz
      EncodeI(Opcode::kRegImm, 1, 8, 7),   // bgez
      EncodeI(Opcode::kAddi, 8, 9, static_cast<std::uint16_t>(-5)),
      EncodeI(Opcode::kAddiu, 8, 9, 5),
      EncodeI(Opcode::kSlti, 8, 9, 100),
      EncodeI(Opcode::kSltiu, 8, 9, 100),
      EncodeI(Opcode::kAndi, 8, 9, 0xFFFF),
      EncodeI(Opcode::kOri, 8, 9, 0xBEEF),
      EncodeI(Opcode::kXori, 8, 9, 0x0001),
      EncodeI(Opcode::kLui, 8, 0, 0x1001),
      EncodeI(Opcode::kLb, 8, 16, 0),
      EncodeI(Opcode::kLh, 8, 16, 2),
      EncodeI(Opcode::kLw, 8, 16, static_cast<std::uint16_t>(-4)),
      EncodeI(Opcode::kLbu, 8, 16, 1),
      EncodeI(Opcode::kLhu, 8, 16, 6),
      EncodeI(Opcode::kSb, 8, 16, 3),
      EncodeI(Opcode::kSh, 8, 16, 8),
      EncodeI(Opcode::kSw, 8, 16, 12),
      EncodeR(Funct::kBreak, 0, 0, 0),
  };

  const AssembledProgram reassembled =
      Assemble(DisassembleProgram(original));
  EXPECT_EQ(reassembled.text, original.text);
}

TEST(ExtendedProgramsTest, DhryListWalkVisitsEveryNode) {
  // The 37-step permutation over 64 nodes is a full cycle, so 2000 steps
  // visit each node 2000/64 = 31.25 times; sum of values = 31 full cycles
  // of sum(0..63) plus a partial lap, plus 40 string-compare successes.
  // acc = 63008 (golden above) is consistent with that: verify the
  // arithmetic here so the golden is explained, not just pinned.
  long long acc = 0;
  int node = 0;
  for (int step = 0; step < 2000; ++step) {
    acc += node;
    node = (node + 37) % 64;
  }
  EXPECT_EQ(acc + 40, 63008);
}

}  // namespace
}  // namespace abenc::sim
