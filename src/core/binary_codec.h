// Pure binary (unencoded) transmission: the reference code of every table.
#pragma once

#include "core/codec.h"

namespace abenc {

/// B(t) = b(t). Irredundant and stateless; the baseline against which all
/// savings in the paper (and in this repo's benches) are reported.
class BinaryCodec final : public Codec {
 public:
  explicit BinaryCodec(unsigned width) : Codec(width) {}

  std::string name() const override { return "binary"; }
  std::string display_name() const override { return "Binary"; }
  unsigned redundant_lines() const override { return 0; }

  BusState Encode(Word address, bool /*sel*/) override {
    return BusState{Mask(address), 0};
  }

  // Devirtualized kernel: one masked store per access, no per-word
  // dispatch. Stateless, so chunk boundaries cannot matter.
  void EncodeBlock(std::span<const BusAccess> in,
                   std::span<BusState> out) override {
    const Word mask = LowMask(width());
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = BusState{in[i].address & mask, 0};
    }
  }
  Word Decode(const BusState& bus, bool /*sel*/) override {
    return Mask(bus.lines);
  }
  void Reset() override {}
};

}  // namespace abenc
