// Shared driver for the Table 8/9 power benches: builds the Section 4
// codec circuits, streams the benchmark-derived reference activity through
// encoder and decoder, and exposes the accumulated switching statistics so
// the benches can re-price them at each capacitive load.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/stream_evaluator.h"
#include "gate/circuits.h"
#include "gate/simulator.h"

namespace abenc::bench {

/// Concatenated prefix of every benchmark's multiplexed stream — the
/// "reference input switching activities derived from the benchmark
/// address streams" of Section 4.2.
std::vector<BusAccess> ReferenceStream(std::size_t per_benchmark);

/// One Section 4 codec, simulated: circuits plus their toggle statistics.
/// The decoder was driven by the encoder's (activity-reduced) outputs,
/// exactly as in the paper's estimation flow.
struct SimulatedCodec {
  std::string name;
  gate::CodecCircuit encoder;
  gate::CodecCircuit decoder;
  std::unique_ptr<gate::GateSimulator> encoder_sim;
  std::unique_ptr<gate::GateSimulator> decoder_sim;
};

/// Build and stream the three codecs of Section 4 (binary, T0, dual
/// T0_BI) over `stream` on a 32-bit bus with stride 4. Output loads start
/// at `output_load_pf` and can be re-priced with SetOutputLoads.
std::vector<SimulatedCodec> SimulateSection4Codecs(
    const std::vector<BusAccess>& stream, double output_load_pf);

}  // namespace abenc::bench
