// Coupling-aware switching-energy accounting for deep-submicron buses.
//
// The paper's metric (one unit per line toggle) models the late-90s
// regime where line-to-ground capacitance dominates. In DSM processes the
// line-to-*line* capacitance takes over, and the energy of a bus cycle
// depends on what adjacent lines do relative to each other. This module
// adds the standard lambda-weighted model used by the coupling-driven
// follow-on literature (odd/even bus-invert etc.):
//
//   E(cycle) = sum_i self(i) + lambda * sum_adjacent_pairs couple(i, i+1)
//
//   couple = 0  if both lines are quiet or switch in the same direction
//            1  if exactly one of the pair switches
//            2  if the pair switches in opposite directions (Miller-
//               doubled worst case)
//
// Line order matters for coupling; the counter assumes the physical order
// data line 0 .. N-1 followed by the redundant lines.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/stream_evaluator.h"

namespace abenc {

/// Weighted self + coupling activity accumulator (the coupling-aware
/// sibling of TransitionCounter).
class CouplingCounter {
 public:
  /// `lambda` is the coupling-to-ground capacitance ratio (0 recovers the
  /// paper's pure transition count; 2-4 is typical for DSM metal).
  CouplingCounter(unsigned width, unsigned redundant_lines, double lambda);

  void Observe(const BusState& state);

  long long self_transitions() const { return self_; }
  long long coupling_events() const { return coupling_; }

  /// The weighted energy metric in "toggle units".
  double weighted_energy() const {
    return static_cast<double>(self_) +
           lambda_ * static_cast<double>(coupling_);
  }

  std::size_t cycles() const { return cycles_; }
  void Reset();

 private:
  unsigned width_;
  unsigned redundant_lines_;
  unsigned total_lines_;
  double lambda_;
  std::vector<int> previous_;  // line values of the previous cycle
  bool first_ = true;
  long long self_ = 0;
  long long coupling_ = 0;
  std::size_t cycles_ = 0;
};

/// Coupling-aware evaluation result.
struct CouplingEvalResult {
  std::string codec_name;
  std::size_t stream_length = 0;
  long long self_transitions = 0;
  long long coupling_events = 0;
  double weighted_energy = 0.0;
};

/// Run `codec` over `stream` from reset, scoring with the coupling model.
CouplingEvalResult EvaluateCoupling(Codec& codec,
                                    std::span<const BusAccess> stream,
                                    double lambda);

}  // namespace abenc
