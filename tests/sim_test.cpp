// Tests of the MIPS-subset substrate: ISA encoding, assembler, memory,
// CPU semantics, and the benchmark program library.
#include <gtest/gtest.h>

#include "sim/assembler.h"
#include "sim/bus_monitor.h"
#include "sim/cpu.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/program_library.h"
#include "trace/trace_stats.h"

namespace abenc::sim {
namespace {

// ---------------------------------------------------------------------------
// ISA
// ---------------------------------------------------------------------------

TEST(IsaTest, RTypeFieldsRoundTrip) {
  const std::uint32_t word = EncodeR(Funct::kAddu, 3, 4, 5, 0);
  const Instruction i{word};
  EXPECT_EQ(i.opcode(), Opcode::kSpecial);
  EXPECT_EQ(i.funct(), Funct::kAddu);
  EXPECT_EQ(i.rd(), 3u);
  EXPECT_EQ(i.rs(), 4u);
  EXPECT_EQ(i.rt(), 5u);
}

TEST(IsaTest, ITypeSignExtension) {
  const Instruction i{EncodeI(Opcode::kAddiu, 1, 2, 0xFFFF)};
  EXPECT_EQ(i.simmediate(), -1);
  EXPECT_EQ(i.immediate(), 0xFFFFu);
}

TEST(IsaTest, RegisterNamesParse) {
  EXPECT_EQ(ParseRegister("$zero"), 0u);
  EXPECT_EQ(ParseRegister("$t0"), 8u);
  EXPECT_EQ(ParseRegister("$sp"), 29u);
  EXPECT_EQ(ParseRegister("$ra"), 31u);
  EXPECT_EQ(ParseRegister("$17"), 17u);
  EXPECT_EQ(ParseRegister("$32"), std::nullopt);
  EXPECT_EQ(ParseRegister("t0"), std::nullopt);
}

TEST(IsaTest, RegisterNameInverse) {
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(ParseRegister(RegisterName(r)), r);
  }
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

TEST(MemoryTest, UntouchedMemoryReadsZero) {
  Memory m;
  EXPECT_EQ(m.LoadWord(0x10000000), 0u);
  EXPECT_EQ(m.allocated_pages(), 0u);
}

TEST(MemoryTest, WordRoundTripIsLittleEndian) {
  Memory m;
  m.StoreWord(0x1000, 0xDEADBEEF);
  EXPECT_EQ(m.LoadWord(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(m.LoadByte(0x1000), 0xEFu);
  EXPECT_EQ(m.LoadByte(0x1003), 0xDEu);
  EXPECT_EQ(m.LoadHalf(0x1002), 0xDEADu);
}

TEST(MemoryTest, CrossPageAccessWorks) {
  Memory m;
  m.StoreWord(Memory::kPageSize - 4, 0x11223344);
  m.StoreWord(Memory::kPageSize, 0x55667788);
  EXPECT_EQ(m.LoadWord(Memory::kPageSize - 4), 0x11223344u);
  EXPECT_EQ(m.LoadWord(Memory::kPageSize), 0x55667788u);
  EXPECT_EQ(m.allocated_pages(), 2u);
}

TEST(MemoryTest, RejectsUnalignedAccess) {
  Memory m;
  EXPECT_THROW(m.LoadWord(0x1001), std::runtime_error);
  EXPECT_THROW(m.StoreHalf(0x1001, 1), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

TEST(AssemblerTest, EncodesBasicArithmetic) {
  const auto p = Assemble("add $t0, $t1, $t2\n");
  ASSERT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.text[0], EncodeR(Funct::kAdd, 8, 9, 10));
}

TEST(AssemblerTest, LiExpandsByValue) {
  EXPECT_EQ(Assemble("li $t0, 42\n").text.size(), 1u);
  EXPECT_EQ(Assemble("li $t0, -5\n").text.size(), 1u);
  EXPECT_EQ(Assemble("li $t0, 0x10000\n").text.size(), 1u);     // pure lui
  EXPECT_EQ(Assemble("li $t0, 0x12345678\n").text.size(), 2u);  // lui+ori
}

TEST(AssemblerTest, LaResolvesDataLabels) {
  const auto p = Assemble(
      ".data\n"
      "x: .word 7\n"
      "y: .word 8\n"
      ".text\n"
      "la $t0, y\n");
  EXPECT_EQ(p.Symbol("x"), kDataBase);
  EXPECT_EQ(p.Symbol("y"), kDataBase + 4);
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(p.text[0], EncodeI(Opcode::kLui, 8, 0, (kDataBase + 4) >> 16));
  EXPECT_EQ(p.text[1],
            EncodeI(Opcode::kOri, 8, 8, (kDataBase + 4) & 0xFFFF));
}

TEST(AssemblerTest, LabelFormLoadsAndStoresExpandThroughAt) {
  const auto p = Assemble(
      ".data\n"
      "x: .word 0x11223344\n"
      ".text\n"
      "lw $t0, x\n"
      "sw $t0, x\n");
  EXPECT_EQ(p.text.size(), 4u);  // two lui/$at pairs
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble(
      ".data\n"
      "x: .word 0x11223344\n"
      "y: .word 0\n"
      ".text\n"
      "lw $t0, x\n"
      "sw $t0, y\n"
      "halt\n"));
  ASSERT_EQ(cpu.Run(100), StopReason::kBreak);
  EXPECT_EQ(cpu.reg(8), 0x11223344u);
  EXPECT_EQ(memory.LoadWord(kDataBase + 4), 0x11223344u);
}

TEST(AssemblerTest, LabelFormHandlesHighLowCarry) {
  // An address whose low half is >= 0x8000 needs the carry-adjusted
  // %hi/%lo split: lui gets high+1 and the offset goes negative.
  const auto p = Assemble(
      ".data\n"
      ".space 0x8100\n"
      "far: .word 42\n"
      ".text\n"
      "lw $t0, far\n"
      "halt\n");
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(p);
  ASSERT_EQ(cpu.Run(100), StopReason::kBreak);
  EXPECT_EQ(cpu.reg(8), 42u);
}

TEST(AssemblerTest, BranchOffsetsAreRelativeToNextInstruction) {
  const auto p = Assemble(
      "top: addiu $t0, $t0, 1\n"
      "beq $t0, $t1, top\n");
  ASSERT_EQ(p.text.size(), 2u);
  // From pc+4 of the branch (0x400008) back to 0x400000: offset -2.
  EXPECT_EQ(static_cast<std::int16_t>(p.text[1] & 0xFFFF), -2);
}

TEST(AssemblerTest, PseudoBranchesUseAt) {
  const auto p = Assemble(
      "loop: blt $t0, $t1, loop\n");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(p.text[0], EncodeR(Funct::kSlt, 1, 8, 9));  // slt $at, $t0, $t1
}

TEST(AssemblerTest, DataDirectivesLayOutBytes) {
  const auto p = Assemble(
      ".data\n"
      "a: .byte 1, 2\n"
      "b: .half 0x1234\n"
      "c: .word 0xAABBCCDD\n"
      "d: .space 3\n"
      "e: .asciiz \"hi\\n\"\n");
  EXPECT_EQ(p.Symbol("a"), kDataBase);
  EXPECT_EQ(p.Symbol("b"), kDataBase + 2);  // aligned to 2
  EXPECT_EQ(p.Symbol("c"), kDataBase + 4);  // aligned to 4
  EXPECT_EQ(p.Symbol("d"), kDataBase + 8);
  EXPECT_EQ(p.Symbol("e"), kDataBase + 11);
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[1], 2);
  EXPECT_EQ(p.data[2], 0x34);
  EXPECT_EQ(p.data[4], 0xDD);
  EXPECT_EQ(p.data[11], 'h');
  EXPECT_EQ(p.data[13], '\n');
  EXPECT_EQ(p.data[14], 0);
}

TEST(AssemblerTest, WordDirectiveAcceptsLabels) {
  const auto p = Assemble(
      ".data\n"
      "ptr: .word target\n"
      "target: .word 1\n");
  const std::uint32_t stored = static_cast<std::uint32_t>(p.data[0]) |
                               (p.data[1] << 8) | (p.data[2] << 16) |
                               (static_cast<std::uint32_t>(p.data[3]) << 24);
  EXPECT_EQ(stored, p.Symbol("target"));
}

TEST(AssemblerTest, ReportsErrorsWithLineNumbers) {
  try {
    Assemble("nop\nbogus $t0, $t1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  EXPECT_THROW(Assemble("x: nop\nx: nop\n"), AssemblyError);
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  EXPECT_THROW(Assemble("j nowhere\n"), AssemblyError);
}

TEST(AssemblerTest, RejectsOutOfRangeImmediate) {
  EXPECT_THROW(Assemble("addiu $t0, $t0, 40000\n"), AssemblyError);
  EXPECT_THROW(Assemble("andi $t0, $t0, -1\n"), AssemblyError);
  EXPECT_THROW(Assemble("sll $t0, $t0, 32\n"), AssemblyError);
  EXPECT_THROW(Assemble("lw $t0, 40000($sp)\n"), AssemblyError);
}

TEST(AssemblerTest, RejectsMalformedOperands) {
  EXPECT_THROW(Assemble("add $t0, $t1\n"), AssemblyError);       // arity
  EXPECT_THROW(Assemble("add $t0, $t1, 5\n"), AssemblyError);    // not a reg
  EXPECT_THROW(Assemble("lw $t0, 4($nope)\n"), AssemblyError);   // bad base
  EXPECT_THROW(Assemble("lw $t0, x($sp\n"), AssemblyError);      // bad form
  EXPECT_THROW(Assemble("li $t0, banana\n"), AssemblyError);
  EXPECT_THROW(Assemble("li $t0, 0x1FFFFFFFF\n"), AssemblyError);  // 33 bits
}

TEST(AssemblerTest, RejectsMalformedDirectives) {
  EXPECT_THROW(Assemble(".data\n.space -4\n"), AssemblyError);
  EXPECT_THROW(Assemble(".data\n.align 20\n"), AssemblyError);
  EXPECT_THROW(Assemble(".data\n.asciiz no-quotes\n"), AssemblyError);
  EXPECT_THROW(Assemble(".data\n.asciiz \"bad \\q escape\"\n"),
               AssemblyError);
  EXPECT_THROW(Assemble(".word 1\n"), AssemblyError);  // .word in .text
  EXPECT_THROW(Assemble(".frobnicate\n"), AssemblyError);
  EXPECT_THROW(Assemble(".data\n.half some_label\n"), AssemblyError);
}

TEST(AssemblerTest, RejectsFarBranches) {
  // A branch whose displacement exceeds the signed 16-bit field.
  std::string source = "target: nop\n";
  for (int i = 0; i < 33000; ++i) source += "nop\n";
  source += "b target\n";
  EXPECT_THROW(Assemble(source), AssemblyError);
}

TEST(AssemblerTest, LabelArithmeticResolves) {
  const auto p = Assemble(
      ".data\n"
      "arr: .space 64\n"
      ".text\n"
      "la $t0, arr+32\n"
      "la $t1, arr + 8\n");
  // ori immediates carry the offsets.
  EXPECT_EQ(p.text[1] & 0xFFFF, (kDataBase + 32) & 0xFFFF);
  EXPECT_EQ(p.text[3] & 0xFFFF, (kDataBase + 8) & 0xFFFF);
}

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

std::uint32_t RunAndGetReg(const std::string& source, unsigned reg,
                           std::uint64_t max_steps = 100000) {
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble(source));
  EXPECT_EQ(cpu.Run(max_steps), StopReason::kBreak);
  return cpu.reg(reg);
}

TEST(CpuTest, ArithmeticAndLogic) {
  EXPECT_EQ(RunAndGetReg("li $t0, 6\nli $t1, 7\nmul $t2, $t0, $t1\nhalt\n",
                         10),
            42u);
  EXPECT_EQ(RunAndGetReg("li $t0, -8\nli $t1, 3\ndivq $t2, $t0, $t1\nhalt\n",
                         10),
            static_cast<std::uint32_t>(-2));
  EXPECT_EQ(RunAndGetReg("li $t0, -8\nli $t1, 3\nrem $t2, $t0, $t1\nhalt\n",
                         10),
            static_cast<std::uint32_t>(-2));
  EXPECT_EQ(RunAndGetReg("li $t0, 0xF0\nli $t1, 0x0F\nor $t2, $t0, $t1\n"
                         "halt\n",
                         10),
            0xFFu);
  EXPECT_EQ(RunAndGetReg("li $t0, 1\nsll $t1, $t0, 31\nsra $t2, $t1, 31\n"
                         "halt\n",
                         10),
            0xFFFFFFFFu);
}

TEST(CpuTest, SltVariantsAreSignedAndUnsigned) {
  EXPECT_EQ(RunAndGetReg("li $t0, -1\nli $t1, 1\nslt $t2, $t0, $t1\nhalt\n",
                         10),
            1u);
  EXPECT_EQ(RunAndGetReg("li $t0, -1\nli $t1, 1\nsltu $t2, $t0, $t1\nhalt\n",
                         10),
            0u);  // 0xFFFFFFFF unsigned is large
}

TEST(CpuTest, LoadsSignExtendAndStoresTruncate) {
  const std::string source =
      ".data\n"
      "b: .byte 0x80\n"
      ".text\n"
      "la $t0, b\n"
      "lb $t1, 0($t0)\n"
      "lbu $t2, 0($t0)\n"
      "halt\n";
  EXPECT_EQ(RunAndGetReg(source, 9), 0xFFFFFF80u);
  EXPECT_EQ(RunAndGetReg(source, 10), 0x80u);
}

TEST(CpuTest, LoopSumsCorrectly) {
  const std::string source =
      "li $t0, 0\n"          // sum
      "li $t1, 1\n"          // i
      "loop: li $t9, 100\n"
      "bgt $t1, $t9, done\n"
      "add $t0, $t0, $t1\n"
      "addiu $t1, $t1, 1\n"
      "b loop\n"
      "done: halt\n";
  EXPECT_EQ(RunAndGetReg(source, 8, 10000), 5050u);
}

TEST(CpuTest, CallAndReturnThroughStack) {
  const std::string source =
      "li $a0, 5\n"
      "jal square\n"
      "move $s0, $v0\n"
      "halt\n"
      "square: subi $sp, $sp, 8\n"
      "sw $ra, 4($sp)\n"
      "mul $v0, $a0, $a0\n"
      "lw $ra, 4($sp)\n"
      "addi $sp, $sp, 8\n"
      "jr $ra\n";
  EXPECT_EQ(RunAndGetReg(source, 16, 1000), 25u);
}

TEST(CpuTest, RegisterZeroStaysZero) {
  EXPECT_EQ(RunAndGetReg("li $t0, 7\nadd $zero, $t0, $t0\n"
                         "move $t1, $zero\nhalt\n",
                         9),
            0u);
}

TEST(CpuTest, StepLimitIsReported) {
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble("loop: b loop\n"));
  EXPECT_EQ(cpu.Run(100), StopReason::kStepLimit);
}

TEST(CpuTest, PcEscapeThrows) {
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble("nop\n"));  // runs off the end
  EXPECT_THROW(cpu.Run(10), ExecutionError);
}

TEST(CpuTest, DivisionByZeroThrows) {
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble("li $t0, 1\nli $t1, 0\ndivq $t2, $t0, $t1\n"));
  EXPECT_THROW(cpu.Run(10), ExecutionError);
}

TEST(CpuTest, BusObserverSeesFetchesAndData) {
  Memory memory;
  BusMonitor monitor("probe");
  Cpu cpu(memory, &monitor);
  cpu.LoadProgram(Assemble(
      ".data\n"
      "x: .word 3\n"
      ".text\n"
      "la $t0, x\n"     // 2 fetches
      "lw $t1, 0($t0)\n"  // 1 fetch + 1 data
      "sw $t1, 4($t0)\n"  // 1 fetch + 1 data
      "halt\n"));         // 1 fetch
  cpu.Run(100);
  EXPECT_EQ(monitor.instruction_trace().size(), 5u);
  EXPECT_EQ(monitor.data_trace().size(), 2u);
  EXPECT_EQ(monitor.multiplexed_trace().size(), 7u);
  EXPECT_EQ(monitor.data_trace()[0].address, kDataBase);
  EXPECT_EQ(monitor.data_trace()[1].address, kDataBase + 4);
  // Fetches are word-sequential from the entry point.
  EXPECT_EQ(monitor.instruction_trace()[0].address, kTextBase);
  EXPECT_EQ(monitor.instruction_trace()[4].address, kTextBase + 16);
}

// ---------------------------------------------------------------------------
// Benchmark program library
// ---------------------------------------------------------------------------

class BenchmarkProgramTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkProgramTest, AssemblesRunsAndHalts) {
  const BenchmarkProgram& program = FindBenchmarkProgram(GetParam());
  const ProgramTraces traces = RunBenchmark(program);
  // Enough references for stable statistics, and every stream non-trivial.
  EXPECT_GT(traces.retired_instructions, 20000u) << program.name;
  EXPECT_GT(traces.data.size(), 500u) << program.name;
  EXPECT_EQ(traces.multiplexed.size(),
            traces.instruction.size() + traces.data.size());
}

TEST_P(BenchmarkProgramTest, StreamStatisticsMatchThePaperRegime) {
  const ProgramTraces traces =
      RunBenchmark(FindBenchmarkProgram(GetParam()));
  const double instr_seq = InSequencePercent(traces.instruction, 32, 4);
  const double data_seq = InSequencePercent(traces.data, 32, 4);
  const double mux_seq = InSequencePercent(traces.multiplexed, 32, 4);
  // Instruction streams are dominated by sequential fetches; data streams
  // are mostly non-sequential; the multiplexed stream sits in between.
  EXPECT_GT(instr_seq, 40.0) << GetParam();
  EXPECT_LT(data_seq, 40.0) << GetParam();
  EXPECT_LT(mux_seq, instr_seq) << GetParam();
  EXPECT_GT(instr_seq, data_seq) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, BenchmarkProgramTest,
    ::testing::Values("gzip", "gunzip", "ghostview", "espresso", "nova",
                      "jedi", "latex", "matlab", "oracle"));

TEST(CpuTest, RegImmBranchesCompareAgainstZero) {
  const std::string source =
      "li $t0, -3\n"
      "li $t1, 0\n"
      "bltz $t0, neg\n"
      "li $t2, 111\n"       // skipped
      "neg: bgez $t1, pos\n"
      "li $t3, 222\n"       // skipped
      "pos: li $t4, 7\n"
      "halt\n";
  EXPECT_EQ(RunAndGetReg(source, 12), 7u);   // $t4 reached
  EXPECT_EQ(RunAndGetReg(source, 10), 0u);   // $t2 skipped
  EXPECT_EQ(RunAndGetReg(source, 11), 0u);   // $t3 skipped
}

TEST(CpuTest, RegImmBranchesRoundTripThroughDisassembly) {
  const auto p = Assemble(
      "top: bltz $t0, top\n"
      "bgez $t1, top\n"
      "halt\n");
  ASSERT_EQ(p.text.size(), 3u);
  EXPECT_EQ(p.text[0] >> 26, 1u);             // REGIMM opcode
  EXPECT_EQ((p.text[0] >> 16) & 31u, 0u);     // BLTZ
  EXPECT_EQ((p.text[1] >> 16) & 31u, 1u);     // BGEZ
}

TEST(CpuTest, InstructionMixClassifiesCorrectly) {
  Memory memory;
  Cpu cpu(memory);
  cpu.LoadProgram(Assemble(
      ".data\n"
      "x: .word 5\n"
      ".text\n"
      "la $t0, x\n"        // 2 alu (lui + ori)
      "lw $t1, 0($t0)\n"   // 1 load
      "sll $t2, $t1, 2\n"  // 1 shift
      "mult $t1, $t2\n"    // muldiv
      "mflo $t3\n"         // muldiv
      "sw $t3, 0($t0)\n"   // 1 store
      "beq $t1, $t2, skip\n"  // branch, not taken
      "beq $zero, $zero, skip\n"  // branch, taken
      "nop\n"              // never executed
      "skip: jal leaf\n"   // call
      "halt\n"             // other
      "leaf: jr $ra\n"));  // jump
  ASSERT_EQ(cpu.Run(100), StopReason::kBreak);
  const InstructionMix& mix = cpu.instruction_mix();
  EXPECT_EQ(mix.alu, 2u);
  EXPECT_EQ(mix.load, 1u);
  EXPECT_EQ(mix.store, 1u);
  EXPECT_EQ(mix.shift, 1u);
  EXPECT_EQ(mix.muldiv, 2u);
  EXPECT_EQ(mix.branch, 2u);
  EXPECT_EQ(mix.branch_taken, 1u);
  EXPECT_EQ(mix.call, 1u);
  EXPECT_EQ(mix.jump, 1u);
  EXPECT_EQ(mix.other, 1u);
  EXPECT_EQ(mix.total(), cpu.retired_instructions());
  EXPECT_DOUBLE_EQ(mix.taken_ratio(), 0.5);
}

TEST(CpuTest, BenchmarkMixesLookLikeRealPrograms) {
  // Sanity envelope for the kernels standing in for real applications:
  // a meaningful memory-access share and a mixed branch population.
  for (const BenchmarkProgram& p : BenchmarkPrograms()) {
    const ProgramTraces traces = RunBenchmark(p);
    const InstructionMix& mix = traces.mix;
    const double total = static_cast<double>(mix.total());
    const double memory_share =
        static_cast<double>(mix.load + mix.store) / total;
    EXPECT_GT(memory_share, 0.03) << p.name;
    EXPECT_LT(memory_share, 0.5) << p.name;
    const double control_share =
        static_cast<double>(mix.branch + mix.jump + mix.call) / total;
    EXPECT_GT(control_share, 0.05) << p.name;
  }
}

TEST(ProgramLibraryTest, HasTheNinePaperBenchmarks) {
  EXPECT_EQ(BenchmarkPrograms().size(), 9u);
  EXPECT_THROW(FindBenchmarkProgram("doom"), std::out_of_range);
}

}  // namespace
}  // namespace abenc::sim
