// Table 8: encoder/decoder power consumption for on-chip bus loads
// (0.1 - 1.0 pF per line, 100 MHz, 3.3 V), binary vs T0 vs dual T0_BI,
// driven by the benchmark-derived reference switching activities.
#include <iostream>

#include "bench/bench_util.h"
#include "bench/power_util.h"
#include "gate/power.h"
#include "gate/timing.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace abenc;
  using namespace abenc::bench;

  const BenchOptions bench_options = ParseBenchOptions(argc, argv);
  MetricsSession metrics(bench_options.metrics_path);

  const auto stream = ReferenceStream(6000);
  auto codecs = SimulateSection4Codecs(stream, 0.1);

  std::cout << "Table 8: Enc/Dec Power Consumption for On-Chip Loads\n";
  std::cout << "(" << stream.size()
            << " reference bus cycles from the nine benchmarks; "
               "0.35um-class cells, 3.3 V, 100 MHz)\n\n";

  TextTable table({"Load (pF)", "Binary Enc/Dec (mW)", "T0 Encoder (mW)",
                   "T0 Decoder (mW)", "Dual T0_BI Encoder (mW)",
                   "Dual T0_BI Decoder (mW)"});

  for (double load = 0.1; load <= 1.001; load += 0.1) {
    for (SimulatedCodec& codec : codecs) {
      codec.encoder.netlist.SetOutputLoads(load);
    }
    const auto enc_power = [&](std::size_t i) {
      return gate::EstimatePower(codecs[i].encoder.netlist,
                                 *codecs[i].encoder_sim, gate::kClockHz,
                                 gate::kVddVolts,
                                 gate::kDefaultGlitchPerLevel)
          .total_mw;
    };
    const auto dec_power = [&](std::size_t i) {
      return gate::EstimatePower(codecs[i].decoder.netlist,
                                 *codecs[i].decoder_sim, gate::kClockHz,
                                 gate::kVddVolts,
                                 gate::kDefaultGlitchPerLevel)
          .total_mw;
    };
    table.AddRow({FormatFixed(load, 1),
                  FormatFixed(enc_power(0) + dec_power(0), 3),
                  FormatFixed(enc_power(1), 3), FormatFixed(dec_power(1), 3),
                  FormatFixed(enc_power(2), 3),
                  FormatFixed(dec_power(2), 3)});
  }
  std::cout << table.ToString() << "\n";
  std::cout << "Gate counts: T0 encoder "
            << codecs[1].encoder.netlist.gate_count() << " cells / "
            << codecs[1].encoder.netlist.flop_count()
            << " flops; dual T0_BI encoder "
            << codecs[2].encoder.netlist.gate_count() << " cells / "
            << codecs[2].encoder.netlist.flop_count() << " flops\n";

  // Section 4.1 also reports the encoder's critical path (5.36 ns in the
  // paper's 0.35 um synthesis, through the bus-invert section and the
  // output mux).
  codecs[1].encoder.netlist.SetOutputLoads(0.2);
  codecs[2].encoder.netlist.SetOutputLoads(0.2);
  const gate::TimingReport timing =
      gate::AnalyzeTiming(codecs[2].encoder.netlist);
  std::cout << "Dual T0_BI encoder critical path: "
            << FormatFixed(timing.critical_path_ns, 2) << " ns ("
            << FormatFixed(timing.max_frequency_hz / 1e6, 0)
            << " MHz max); T0 encoder: "
            << FormatFixed(
                   gate::AnalyzeTiming(codecs[1].encoder.netlist)
                       .critical_path_ns,
                   2)
            << " ns\n";
  metrics.WriteIfEnabled();
  return 0;
}
