// Closed-form performance models behind Table 1 of the paper, plus small
// numeric helpers used by the power benches (Table 9 crossover loads).
#pragma once

#include <string>
#include <vector>

#include "core/types.h"

namespace abenc {

/// Binomial coefficient C(n, k) as a double (exact for the n <= 65 used
/// here, which stays far below 2^53).
double Binomial(unsigned n, unsigned k);

/// Eq. 5 of the paper: the average number of transitions per clock cycle
/// of the bus-invert code on an uniformly random stream,
///
///     eta = (1/2^N) * sum_{k=0}^{N/2} k * C(N+1, k)
///
/// i.e. the mean of min(H, N+1-H) over the N+1 encoded lines.
double BusInvertEta(unsigned width);

/// Average transitions per clock of plain binary on an uniformly random
/// stream: N/2.
double BinaryRandomTransitions(unsigned width);

/// Average transitions per clock of plain binary on an unlimited
/// in-sequence stream with stride S = 2^s: the counter identity
///     sum_{k=s}^{N-1} 2^-(k-s) = 2 * (1 - 2^-(N-s)).
double BinaryCountingTransitions(unsigned width, Word stride);

/// One row of Table 1.
struct Table1Row {
  std::string stream;             // "Out-of-Sequence" / "In-Sequence"
  std::string code;               // "Binary" / "T0" / "Bus-Inv"
  double transitions_per_clock;   // over all driven lines
  double transitions_per_line;    // divided by N + redundant lines
  double relative_power;          // I/O power normalised to binary = 1
};

/// The complete analytical comparison of Table 1 for an N-bit bus.
/// Asymptotic regime (unlimited streams): T0's INC line is constant in
/// both cases, binary and bus-invert behave identically on in-sequence
/// streams (the Hamming distance of a counting step never exceeds N/2
/// for N >= 4).
std::vector<Table1Row> AnalyticalTable1(unsigned width, Word stride);

/// Linear-interpolation crossover: smallest x where curve `a` stops being
/// below curve `b`. Both curves are sampled at the same ascending
/// abscissae. Returns a negative value if they never cross.
double CrossoverAbscissa(const std::vector<double>& x,
                         const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace abenc
