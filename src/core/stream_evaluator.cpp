#include "core/stream_evaluator.h"

#include <sstream>
#include <stdexcept>

namespace abenc {

double SavingsPercent(long long transitions, long long binary_transitions) {
  if (binary_transitions == 0) return 0.0;
  return 100.0 *
         (static_cast<double>(binary_transitions - transitions) /
          static_cast<double>(binary_transitions));
}

double InSequencePercent(std::span<const BusAccess> stream, Word stride,
                         unsigned width) {
  if (stream.size() < 2) return 0.0;
  std::size_t in_seq = 0;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    const Word expected = (stream[i - 1].address + stride) & LowMask(width);
    if ((stream[i].address & LowMask(width)) == expected) ++in_seq;
  }
  return 100.0 * static_cast<double>(in_seq) /
         static_cast<double>(stream.size() - 1);
}

EvalResult Evaluate(Codec& codec, std::span<const BusAccess> stream,
                    Word stride_for_stats, bool verify_decode) {
  codec.Reset();
  TransitionCounter counter(codec.width(), codec.redundant_lines());
  for (const BusAccess& access : stream) {
    const BusState state = codec.Encode(access.address, access.sel);
    counter.Observe(state);
    if (verify_decode) {
      const Word decoded = codec.Decode(state, access.sel);
      const Word expected = access.address & LowMask(codec.width());
      if (decoded != expected) {
        std::ostringstream msg;
        msg << codec.name() << ": decode mismatch, got 0x" << std::hex
            << decoded << " expected 0x" << expected;
        throw std::logic_error(msg.str());
      }
    }
  }
  EvalResult result;
  result.codec_name = codec.name();
  result.stream_length = stream.size();
  result.transitions = counter.total();
  result.peak_transitions = counter.peak();
  result.in_sequence_percent =
      InSequencePercent(stream, stride_for_stats, codec.width());
  result.per_line = counter.per_line();
  return result;
}

std::vector<BusAccess> ToAccesses(std::span<const Word> addresses, bool sel) {
  std::vector<BusAccess> out;
  out.reserve(addresses.size());
  for (Word a : addresses) out.push_back(BusAccess{a, sel});
  return out;
}

}  // namespace abenc
