// Tests for the disassembler, including the strongest property we have on
// the toolchain: assemble(disassemble(program)) is bit-identical for every
// benchmark in the library.
#include <gtest/gtest.h>

#include "sim/disassembler.h"
#include "sim/program_library.h"

namespace abenc::sim {
namespace {

TEST(DisassembleTest, RendersRType) {
  EXPECT_EQ(Disassemble(Instruction{EncodeR(Funct::kAddu, 8, 9, 10)},
                        kTextBase),
            "addu $t0, $t1, $t2");
  EXPECT_EQ(Disassemble(Instruction{EncodeR(Funct::kSll, 2, 0, 3, 5)},
                        kTextBase),
            "sll $v0, $v1, 5");
  EXPECT_EQ(Disassemble(Instruction{EncodeR(Funct::kJr, 0, 31, 0)},
                        kTextBase),
            "jr $ra");
  EXPECT_EQ(Disassemble(Instruction{EncodeR(Funct::kBreak, 0, 0, 0)},
                        kTextBase),
            "break");
}

TEST(DisassembleTest, RendersITypeWithSignedImmediates) {
  EXPECT_EQ(Disassemble(Instruction{EncodeI(Opcode::kAddiu, 8, 8, 0xFFFF)},
                        kTextBase),
            "addiu $t0, $t0, -1");
  EXPECT_EQ(Disassemble(Instruction{EncodeI(Opcode::kOri, 8, 8, 0xFFFF)},
                        kTextBase),
            "ori $t0, $t0, 65535");
  EXPECT_EQ(Disassemble(Instruction{EncodeI(Opcode::kLw, 9, 29, 0xFFFC)},
                        kTextBase),
            "lw $t1, -4($sp)");
}

TEST(DisassembleTest, RendersControlFlowWithAbsoluteTargets) {
  // beq $t0, $t1, +2 instructions from 0x400000.
  const Instruction branch{EncodeI(Opcode::kBeq, 9, 8, 1)};
  EXPECT_EQ(Disassemble(branch, 0x400000), "beq $t0, $t1, 0x400008");
  const Instruction jump{EncodeJ(Opcode::kJal, 0x400010 >> 2)};
  EXPECT_EQ(Disassemble(jump, 0x400000), "jal 0x400010");
}

TEST(DisassembleTest, UnknownWordsFallBackToWordDirective) {
  const Instruction bogus{0xFC000000};  // opcode 0x3F
  EXPECT_NE(Disassemble(bogus, kTextBase).find(".word"), std::string::npos);
}

TEST(DisassembleListingTest, OneLinePerInstruction) {
  const auto program = Assemble("nop\nhalt\n");
  const std::string listing = DisassembleListing(program);
  EXPECT_NE(listing.find("0x400000"), std::string::npos);
  EXPECT_NE(listing.find("break"), std::string::npos);
  EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 2);
}

TEST(DisassembleProgramTest, SimpleLoopRoundTrips) {
  const auto original = Assemble(
      "li $t0, 0\n"
      "loop: addiu $t0, $t0, 1\n"
      "li $t9, 10\n"
      "blt $t0, $t9, loop\n"
      "bltz $t0, loop\n"
      "bgez $zero, done\n"
      "done: halt\n");
  const std::string source = DisassembleProgram(original);
  const auto rebuilt = Assemble(source);
  EXPECT_EQ(rebuilt.text, original.text);
  EXPECT_EQ(rebuilt.data, original.data);
}

class BenchmarkRoundTripTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(BenchmarkRoundTripTest, AssembleDisassembleAssembleIsIdentity) {
  const BenchmarkProgram& program = FindBenchmarkProgram(GetParam());
  const AssembledProgram original = Assemble(program.source);
  const std::string source = DisassembleProgram(original);
  const AssembledProgram rebuilt = Assemble(source);
  EXPECT_EQ(rebuilt.text, original.text) << program.name;
  EXPECT_EQ(rebuilt.data, original.data) << program.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, BenchmarkRoundTripTest,
    ::testing::Values("gzip", "gunzip", "ghostview", "espresso", "nova",
                      "jedi", "latex", "matlab", "oracle", "fft", "qsort",
                      "dhry"));

}  // namespace
}  // namespace abenc::sim
