#include "service/service.h"

#include <stdexcept>
#include <utility>

namespace abenc::service {

EncodingService::EncodingService(ServiceConfig config)
    : config_(std::move(config)), metrics_(ServiceMetrics::Resolve()) {
  if (config_.shards == 0) {
    throw std::invalid_argument("EncodingService: shards must be nonzero");
  }
  const Shard::Policy policy{config_.drain_batch, config_.idle_evict_steps};
  shards_.reserve(config_.shards);
  for (unsigned i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, policy, &metrics_));
  }
  if (config_.start_drivers) {
    const unsigned workers = config_.parallelism != 0
                                 ? config_.parallelism
                                 : ThreadPool::DefaultParallelism();
    pool_ = std::make_unique<ThreadPool>(workers);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      pool_->Submit([this, i]() { DriveShard(i); });
    }
    if (config_.enable_watchdog) {
      watchdog_ = std::thread([this]() { WatchdogLoop(); });
    }
  }
}

EncodingService::~EncodingService() { Stop(); }

std::uint64_t EncodingService::OpenSession() {
  return OpenSession(config_.session);
}

std::uint64_t EncodingService::OpenSession(
    const SessionConfig& session_config) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const std::uint64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(id, session_config, &metrics_);
  // Round-robin placement over live shards; a dead shard never gets new
  // sessions.
  for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
    Shard& shard = *shards_[next_shard_++ % shards_.size()];
    if (!shard.dead()) {
      shard.Add(session);
      sessions_.emplace(id, std::move(session));
      Bump(metrics_.sessions_opened);
      return id;
    }
  }
  throw std::runtime_error("EncodingService: every shard has failed");
}

namespace {

std::shared_ptr<Session> FindSession(
    const std::map<std::uint64_t, std::shared_ptr<Session>>& sessions,
    std::uint64_t id, std::mutex& mutex) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = sessions.find(id);
  if (it == sessions.end()) {
    throw std::out_of_range("EncodingService: unknown session id " +
                            std::to_string(id));
  }
  return it->second;
}

}  // namespace

Admission EncodingService::Submit(std::uint64_t session_id,
                                  std::span<const BusAccess> batch) {
  return FindSession(sessions_, session_id, sessions_mutex_)->Submit(batch);
}

Admission EncodingService::SubmitColumns(std::uint64_t session_id,
                                         ColumnBatch&& batch) {
  return FindSession(sessions_, session_id, sessions_mutex_)
      ->SubmitColumns(std::move(batch));
}

RenegotiateOutcome EncodingService::Renegotiate(
    std::uint64_t session_id, const std::string& codec_name) {
  return FindSession(sessions_, session_id, sessions_mutex_)
      ->Renegotiate(codec_name);
}

std::optional<RenegotiationSnapshot> EncodingService::StatsSnapshot(
    std::uint64_t session_id) const {
  return FindSession(sessions_, session_id, sessions_mutex_)
      ->StatsSnapshot();
}

void EncodingService::CloseSession(std::uint64_t session_id) {
  FindSession(sessions_, session_id, sessions_mutex_)->CloseInput();
}

bool EncodingService::EvictSession(std::uint64_t session_id) {
  return FindSession(sessions_, session_id, sessions_mutex_)->Evict();
}

SessionReport EncodingService::Report(std::uint64_t session_id) const {
  return FindSession(sessions_, session_id, sessions_mutex_)->Report();
}

bool EncodingService::HasSession(std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.find(session_id) != sessions_.end();
}

std::size_t EncodingService::SessionQueued(std::uint64_t session_id) const {
  return FindSession(sessions_, session_id, sessions_mutex_)->queued();
}

std::vector<SessionReport> EncodingService::ReportAll() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  std::vector<SessionReport> reports;
  reports.reserve(sessions.size());
  for (const std::shared_ptr<Session>& session : sessions) {
    reports.push_back(session->Report());
  }
  return reports;
}

std::size_t EncodingService::total_queued() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  std::size_t total = 0;
  for (const std::shared_ptr<Session>& session : sessions) {
    total += session->queued();
  }
  return total;
}

bool EncodingService::Drain(std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    if (total_queued() == 0) return true;
    if (std::chrono::steady_clock::now() >= until) {
      return total_queued() == 0;
    }
    if (!config_.start_drivers) {
      StepAll();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

ShutdownResult EncodingService::Stop(std::chrono::milliseconds deadline) {
  if (stopped_) return ShutdownResult::kDrained;
  stopping_.store(true, std::memory_order_release);
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  ShutdownResult result = ShutdownResult::kDrained;
  if (pool_) {
    result = pool_->Shutdown(deadline);
    if (result == ShutdownResult::kDrained) pool_.reset();
    // On kTimedOut the pool object is kept alive (its workers were
    // detached and share its internal state); destroying the service is
    // then safe, but the wedged task itself must not touch the service
    // after that — the caller unwedges or leaks it, as with any
    // deadline-abandonment scheme.
  }
  stopped_ = true;
  return result;
}

void EncodingService::StepAll() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->dead()) shard->Step();
  }
}

void EncodingService::DriveShard(std::size_t index) {
  Shard& shard = *shards_[index];
  if (stopping_.load(std::memory_order_acquire) || shard.dead()) return;
  bool worked = false;
  try {
    worked = shard.Step();
  } catch (...) {
    // A shard pass must never take the pool down; count and carry on.
    Bump(metrics_.shard_errors);
  }
  if (stopping_.load(std::memory_order_acquire) || shard.dead()) return;
  if (!worked) std::this_thread::sleep_for(config_.idle_backoff);
  try {
    pool_->Submit([this, index]() { DriveShard(index); });
  } catch (const std::logic_error&) {
    // Shutdown began between the check above and the re-submit; done.
  }
}

void EncodingService::WatchdogLoop() {
  std::vector<std::uint64_t> last_beat(shards_.size(), 0);
  std::vector<unsigned> strikes(shards_.size(), 0);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval, [this]() {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) return;
    Bump(metrics_.watchdog_checks);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      if (shard.dead()) continue;
      const std::uint64_t beat = shard.heartbeat();
      if (beat != last_beat[i]) {
        last_beat[i] = beat;
        strikes[i] = 0;
        continue;
      }
      if (shard.pending() == 0) {
        strikes[i] = 0;  // frozen but idle: nothing to miss
        continue;
      }
      if (++strikes[i] >= config_.watchdog_stuck_strikes) {
        // Never fail over the last live shard: a starved-but-alive
        // shard will eventually drain, whereas killing it would strand
        // every session on a dead shard and deadlock Drain().
        unsigned live = 0;
        for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
          if (!shard_ptr->dead()) ++live;
        }
        if (live > 1) FailOver(i);
        strikes[i] = 0;
      }
    }
  }
}

void EncodingService::FailOver(std::size_t index) {
  Shard& stuck = *shards_[index];
  stuck.MarkDead();  // fence: a resuming zombie Step() exits untouched
  std::vector<std::shared_ptr<Session>> orphans = stuck.TakeAll();
  // Migrate to the surviving shards, round-robin. With no survivor the
  // sessions are parked back on the dead shard: nothing will drain them,
  // but Report()/Submit() still work and Stop() stays bounded.
  std::vector<Shard*> alive;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->dead()) alive.push_back(shard.get());
  }
  std::size_t target = 0;
  for (std::shared_ptr<Session>& orphan : orphans) {
    if (alive.empty()) {
      stuck.Add(std::move(orphan));
    } else {
      alive[target++ % alive.size()]->Add(std::move(orphan));
    }
  }
  failovers_.fetch_add(1, std::memory_order_relaxed);
  Bump(metrics_.watchdog_failovers);
}

}  // namespace abenc::service
