// String-keyed construction of every codec in the library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/codec.h"

namespace abenc {

/// Construction parameters shared by all codes.
struct CodecOptions {
  unsigned width = 32;   // address bus width N
  Word stride = 4;       // sequential increment S (power of two)
  unsigned partitions = 1;     // bus-invert partitions
  unsigned wz_zones = 4;       // working-zone registers
  unsigned wz_offset_bits = 8; // working-zone window bits
  unsigned beach_cluster_bits = 8;
  unsigned mtf_entries = 16;   // move-to-front dictionary size
  double coupling_lambda = 2.0; // coupling/ground cap ratio (OE-invert)
  // Adaptive meta-codec (src/core/adaptive_codec.h): decision window in
  // accesses, minimum per-window toggle advantage required to switch,
  // and the member palette as a comma-separated name list (empty =
  // AdaptiveCodec::DefaultPalette()).
  std::size_t adaptive_window = 64;
  long long adaptive_hysteresis = 16;
  std::string adaptive_palette;
};

/// Create a codec by machine name. Known names:
///   "binary", "gray", "gray-word" (stride-aware Gray), "bus-invert",
///   "t0", "t0-bi", "dual-t0", "dual-t0-bi",
///   "offset", "inc-xor", "working-zone", "beach", "beach-corr", "mtf",
///   "couple-invert", "adaptive" (windowed meta-codec over a member
///   palette, built recursively through this factory).
/// Throws CodecConfigError for unknown names or invalid options.
CodecPtr MakeCodec(const std::string& name, const CodecOptions& options = {});

/// Names of the "existing" codes compared in Tables 2-4 (binary first).
std::vector<std::string> ExistingCodecNames();

/// Names of the mixed codes proposed by the paper (Tables 5-7).
std::vector<std::string> MixedCodecNames();

/// Every code the factory knows about.
std::vector<std::string> AllCodecNames();

}  // namespace abenc
