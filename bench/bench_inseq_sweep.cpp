// Ablation: savings of every paper code as a function of the in-sequence
// probability of the stream. This locates the crossovers the paper
// explains qualitatively — bus-invert wins at low sequentiality, the T0
// family wins at high sequentiality — and shows where the T0_BI / dual T0
// ranking of Table 7 flips as streams become more or less branchy.
#include <iostream>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "trace/synthetic.h"

int main() {
  using namespace abenc;

  const CodecOptions options;  // 32-bit bus, stride 4
  const std::vector<std::string> codes = {"t0", "bus-invert", "t0-bi",
                                          "dual-t0", "dual-t0-bi"};
  constexpr std::size_t kLength = 80000;
  constexpr double kDataRatio = 0.35;  // data slots per instruction slot

  std::cout << "Ablation: savings vs in-sequence probability of the\n"
               "instruction part of a multiplexed stream ("
            << kLength << " references, " << kDataRatio
            << " data-slot ratio, data slots non-sequential)\n\n";

  std::vector<std::string> headers = {"p(in-seq)", "measured in-seq"};
  for (const auto& name : codes) {
    headers.push_back(MakeCodec(name, options)->display_name());
  }
  TextTable table(std::move(headers));

  for (double p = 0.1; p <= 0.96; p += 0.1) {
    // Instruction slots follow a Markov chain with the dialled
    // sequentiality; data slots jump within a separate region.
    SyntheticGenerator gen(99);
    const AddressTrace instr =
        gen.Markov(kLength, p, options.stride, options.width);
    const AddressTrace data = gen.DataLike(
        static_cast<std::size_t>(kLength * kDataRatio), options.stride,
        options.width);
    std::vector<bool> schedule;
    schedule.reserve(instr.size() + data.size());
    SyntheticGenerator coin(7);
    {
      // Deterministic interleave at the requested ratio.
      std::size_t d = 0;
      for (std::size_t i = 0; i < instr.size(); ++i) {
        schedule.push_back(true);
        if (d < data.size() &&
            (i * data.size()) / instr.size() > (d > 0 ? d - 1 : 0)) {
          schedule.push_back(false);
          ++d;
        }
      }
    }
    const AddressTrace mux = MultiplexTraces(instr, data, schedule);
    const auto accesses = mux.ToBusAccesses();

    auto binary = MakeCodec("binary", options);
    const EvalResult base =
        Evaluate(*binary, accesses, options.stride, true);

    std::vector<std::string> row = {FormatFixed(p, 1),
                                    FormatPercent(base.in_sequence_percent)};
    for (const auto& name : codes) {
      auto codec = MakeCodec(name, options);
      const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
      row.push_back(
          FormatPercent(SavingsPercent(r.transitions, base.transitions)));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString();
  std::cout << "\nBus-invert is insensitive to p; the dual codes grow with\n"
               "it. Below: the other lever — how often data slots interrupt\n"
               "the instruction runs (p fixed at 0.85).\n\n";

  std::vector<std::string> headers2 = {"data ratio", "measured in-seq"};
  for (const auto& name : codes) {
    headers2.push_back(MakeCodec(name, options)->display_name());
  }
  TextTable table2(std::move(headers2));
  for (double ratio : {0.05, 0.1, 0.2, 0.35, 0.5, 0.8}) {
    SyntheticGenerator gen(99);
    const AddressTrace instr =
        gen.Markov(kLength, 0.85, options.stride, options.width);
    const AddressTrace data =
        gen.DataLike(static_cast<std::size_t>(kLength * ratio),
                     options.stride, options.width);
    std::vector<bool> schedule;
    std::size_t d = 0;
    for (std::size_t i = 0; i < instr.size(); ++i) {
      schedule.push_back(true);
      if (data.size() > 0 && (i * data.size()) / instr.size() >
                                 (d > 0 ? d - 1 : 0) &&
          d < data.size()) {
        schedule.push_back(false);
        ++d;
      }
    }
    const AddressTrace mux = MultiplexTraces(instr, data, schedule);
    const auto accesses = mux.ToBusAccesses();
    auto binary = MakeCodec("binary", options);
    const EvalResult base =
        Evaluate(*binary, accesses, options.stride, true);
    std::vector<std::string> row = {FormatFixed(ratio, 2),
                                    FormatPercent(base.in_sequence_percent)};
    for (const auto& name : codes) {
      auto codec = MakeCodec(name, options);
      const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
      row.push_back(
          FormatPercent(SavingsPercent(r.transitions, base.transitions)));
    }
    table2.AddRow(std::move(row));
  }
  std::cout << table2.ToString();
  std::cout << "\nWith rare data slots the plain-T0 family tracks the dual\n"
               "codes (runs on the bus survive); frequent data slots kill\n"
               "T0/T0_BI but not the SEL-gated dual codes — this is why\n"
               "dual T0_BI wins Table 7 and why the T0_BI vs dual-T0\n"
               "ranking depends on the workload's load/store density.\n";
  return 0;
}
