// Parametric synthetic address streams. Used by the analytical benches
// (Table 1's Monte-Carlo cross-check), the ablation sweeps, and the
// property tests; they let the in-sequence probability be dialled
// continuously, which no fixed benchmark trace allows.
#pragma once

#include <cstdint>
#include <random>

#include "trace/trace.h"

namespace abenc {

/// Deterministic generator of synthetic streams. All methods are pure
/// functions of the constructor seed and their arguments.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(std::uint64_t seed = 0x5eedu) : rng_(seed) {}

  /// An unlimited-consecutive stream: start, start+S, start+2S, ...
  /// (the paper's asymptotic in-sequence case).
  AddressTrace Sequential(std::size_t count, Word start = 0x400000,
                          Word stride = 4, unsigned width = 32);

  /// Independent uniformly distributed addresses (the paper's asymptotic
  /// out-of-sequence case).
  AddressTrace UniformRandom(std::size_t count, unsigned width = 32);

  /// First-order Markov model of a real address stream: with probability
  /// `p_in_sequence` the next address is previous+stride, otherwise it
  /// jumps uniformly within a working set of `working_set` addresses
  /// aligned to the stride. This is the knob the in-seq ablation sweeps.
  AddressTrace Markov(std::size_t count, double p_in_sequence,
                      Word stride = 4, unsigned width = 32,
                      Word working_set = 1 << 20);

  /// Instruction-stream model: sequential runs whose lengths are
  /// geometrically distributed with mean `mean_run`, broken by branches
  /// that jump within a code segment of `segment` bytes.
  AddressTrace InstructionLike(std::size_t count, double mean_run = 6.0,
                               Word stride = 4, unsigned width = 32,
                               Word base = 0x400000, Word segment = 1 << 16);

  /// Data-stream model: a mixture of sequential array sweeps, stack
  /// accesses around a moving frame pointer, and pointer-chasing jumps,
  /// with weights chosen to land near the paper's ~11 % in-sequence rate.
  AddressTrace DataLike(std::size_t count, Word stride = 4,
                        unsigned width = 32, Word heap_base = 0x10000000,
                        Word stack_base = 0x7fff0000);

  /// Zipf-distributed references over `universe` hot addresses — models
  /// the skewed reuse of data references (no sequentiality at all).
  AddressTrace ZipfRandom(std::size_t count, std::size_t universe,
                          double exponent = 1.2, unsigned width = 32,
                          Word base = 0x10000000, Word stride = 4);

  /// Interleave instruction-like and data-like streams as a shared bus
  /// would see them: each instruction slot is followed by a data slot with
  /// probability `data_ratio` (MIPS-like loads/stores every ~3 instrs).
  AddressTrace MultiplexedLike(std::size_t count, double data_ratio = 0.35,
                               Word stride = 4, unsigned width = 32);

 private:
  double UniformUnit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }

  std::mt19937_64 rng_;
};

}  // namespace abenc
