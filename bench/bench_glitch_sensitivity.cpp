// Ablation: how sensitive are the Table 8 conclusions to the glitch-model
// knob? The depth-proportional glitch factor is the one free parameter of
// the power substrate (gate/power.h); this sweep shows the encoder
// ordering and the dual-vs-T0 ratio across its plausible range, including
// 0 (pure zero-delay counting).
#include <iostream>

#include "bench/power_util.h"
#include "gate/power.h"
#include "report/table.h"

int main() {
  using namespace abenc;
  using namespace abenc::bench;

  const auto stream = ReferenceStream(4000);
  auto codecs = SimulateSection4Codecs(stream, 0.2);

  TextTable table({"Glitch/level", "Binary (mW)", "T0 enc (mW)",
                   "Dual T0_BI enc (mW)", "Dual/T0 ratio"});
  for (double g : {0.0, 0.1, 0.25, 0.4, 0.6}) {
    const auto power = [&](std::size_t i) {
      return gate::EstimatePower(codecs[i].encoder.netlist,
                                 *codecs[i].encoder_sim, gate::kClockHz,
                                 gate::kVddVolts, g)
          .total_mw;
    };
    const double binary = power(0);
    const double t0 = power(1);
    const double dual = power(2);
    table.AddRow({FormatFixed(g, 2), FormatFixed(binary, 3),
                  FormatFixed(t0, 3), FormatFixed(dual, 3),
                  FormatFixed(dual / t0, 2)});
  }
  std::cout << "Ablation: encoder power vs the glitch-model factor\n"
            << "(" << stream.size()
            << " reference cycles, 0.2 pF on-chip loads)\n\n"
            << table.ToString()
            << "\nThe ordering binary < T0 < dual T0_BI holds at every\n"
               "setting; the factor only scales the dual-vs-T0 gap (the\n"
               "paper's 'order of magnitude' corresponds to the deep end\n"
               "of the range). Table 8 uses 0.25.\n";
  return 0;
}
