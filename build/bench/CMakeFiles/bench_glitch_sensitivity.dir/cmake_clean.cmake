file(REMOVE_RECURSE
  "CMakeFiles/bench_glitch_sensitivity.dir/bench_glitch_sensitivity.cpp.o"
  "CMakeFiles/bench_glitch_sensitivity.dir/bench_glitch_sensitivity.cpp.o.d"
  "bench_glitch_sensitivity"
  "bench_glitch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glitch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
