file(REMOVE_RECURSE
  "libabenc_analysis.a"
)
