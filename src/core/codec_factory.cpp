#include "core/codec_factory.h"

#include <memory>

#include "core/adaptive_codec.h"
#include "core/beach_codec.h"
#include "core/binary_codec.h"
#include "core/bus_invert_codec.h"
#include "core/couple_invert_codec.h"
#include "core/dual_t0_codec.h"
#include "core/dual_t0bi_codec.h"
#include "core/gray_codec.h"
#include "core/inc_xor_codec.h"
#include "core/mtf_codec.h"
#include "core/offset_codec.h"
#include "core/t0_codec.h"
#include "core/t0bi_codec.h"
#include "core/working_zone_codec.h"

namespace abenc {

CodecPtr MakeCodec(const std::string& name, const CodecOptions& o) {
  if (name == "binary") return std::make_unique<BinaryCodec>(o.width);
  if (name == "gray") return std::make_unique<GrayCodec>(o.width, 1);
  if (name == "gray-word") {
    return std::make_unique<GrayCodec>(o.width, o.stride);
  }
  if (name == "bus-invert") {
    return std::make_unique<BusInvertCodec>(o.width, o.partitions);
  }
  if (name == "t0") return std::make_unique<T0Codec>(o.width, o.stride);
  if (name == "t0-bi") return std::make_unique<T0BICodec>(o.width, o.stride);
  if (name == "dual-t0") {
    return std::make_unique<DualT0Codec>(o.width, o.stride);
  }
  if (name == "dual-t0-bi") {
    return std::make_unique<DualT0BICodec>(o.width, o.stride);
  }
  if (name == "offset") return std::make_unique<OffsetCodec>(o.width);
  if (name == "inc-xor") {
    return std::make_unique<IncXorCodec>(o.width, o.stride);
  }
  if (name == "working-zone") {
    return std::make_unique<WorkingZoneCodec>(o.width, o.wz_zones,
                                              o.wz_offset_bits);
  }
  if (name == "beach") {
    return std::make_unique<BeachCodec>(o.width, o.beach_cluster_bits);
  }
  if (name == "beach-corr") {
    return std::make_unique<BeachCodec>(o.width, o.beach_cluster_bits,
                                        BeachCodec::Clustering::kCorrelation);
  }
  if (name == "mtf") return std::make_unique<MtfCodec>(o.width, o.mtf_entries);
  if (name == "couple-invert") {
    return std::make_unique<CoupleInvertCodec>(o.width, o.coupling_lambda);
  }
  if (name == "adaptive") {
    // Members are built through this same factory with the caller's
    // options (width, stride, partitions, ...); the palette cannot
    // contain "adaptive" itself, so the recursion is one level deep.
    return std::make_unique<AdaptiveCodec>(
        o.width, AdaptiveCodec::ParsePalette(o.adaptive_palette),
        o.adaptive_window, o.adaptive_hysteresis, o.stride,
        [o](const std::string& member) { return MakeCodec(member, o); });
  }
  throw CodecConfigError("unknown codec name: " + name);
}

std::vector<std::string> ExistingCodecNames() {
  return {"binary", "t0", "bus-invert"};
}

std::vector<std::string> MixedCodecNames() {
  return {"t0-bi", "dual-t0", "dual-t0-bi"};
}

std::vector<std::string> AllCodecNames() {
  return {"binary",     "gray",   "gray-word", "bus-invert",
          "t0",         "t0-bi",  "dual-t0",   "dual-t0-bi",
          "offset",     "inc-xor", "working-zone", "beach", "beach-corr", "mtf",
          "couple-invert", "adaptive"};
}

}  // namespace abenc
