// Tests for the fault-tolerant channel layer: protection codes, fault
// models, the resync beacon bound and the recovery state machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "channel/fault_models.h"
#include "channel/upset.h"
#include "core/stream_evaluator.h"
#include "sim/program_library.h"
#include "trace/synthetic.h"

namespace abenc {
namespace {

std::vector<BusAccess> SequentialStream(std::size_t count) {
  SyntheticGenerator gen(1);
  return gen.Sequential(count, 0x400000, 4, 32).ToBusAccesses();
}

// The stream bench_error_resilience sweeps (gzip, multiplexed, 20000).
const std::vector<BusAccess>& GzipStream() {
  static const std::vector<BusAccess> stream = [] {
    const sim::ProgramTraces traces =
        sim::RunBenchmark(sim::FindBenchmarkProgram("gzip"));
    auto accesses = traces.multiplexed.ToBusAccesses();
    accesses.resize(std::min<std::size_t>(accesses.size(), 20000));
    return accesses;
  }();
  return stream;
}

// The codes bench_error_resilience compares.
const std::vector<std::string> kResilienceCodes = {
    "binary",     "gray-word", "bus-invert", "t0",           "t0-bi",
    "dual-t0",    "dual-t0-bi", "inc-xor",   "offset",
    "working-zone", "mtf"};

// The codes whose decoder carries history across cycles.
const std::vector<std::string> kHistoryCodes = {
    "t0",     "t0-bi",  "dual-t0",      "dual-t0-bi",
    "offset", "inc-xor", "working-zone", "mtf"};

ChannelConfig Configure(const std::string& code,
                        Protection protection = Protection::kNone,
                        std::size_t resync_period = 0) {
  ChannelConfig config;
  config.codec_name = code;
  config.protection = protection;
  config.resync_period = resync_period;
  return config;
}

// ---------------------------------------------------------------- SECDED

TEST(SecdedTest, GeometryMatchesHamming7264) {
  // 64 message bits need 7 Hamming bits + overall parity: the industry
  // (72,64) layout. The 33-bit T0 frame (32 data + INC) needs 6 + 1.
  EXPECT_EQ(SecdedCode(64, 0).check_lines(), 8u);
  EXPECT_EQ(SecdedCode(32, 1).check_lines(), 7u);
  EXPECT_EQ(SecdedCode(32, 0).check_lines(), 7u);
  // A width-1 bus: Hamming(3,1) + overall parity, the classic (4,1) code.
  EXPECT_EQ(SecdedCode(1, 0).check_lines(), 3u);
}

TEST(SecdedTest, CleanFramesPassUntouched) {
  const SecdedCode code(32, 2);
  for (Word seed : {Word{0}, Word{0x12345678}, ~Word{0}, Word{0xA5A5A5A5}}) {
    BusState coded{seed & LowMask(32), seed & LowMask(2)};
    Word check = code.ComputeCheck(coded);
    const BusState original = coded;
    EXPECT_EQ(code.CorrectInPlace(coded, check), SecdedOutcome::kClean);
    EXPECT_EQ(coded, original);
  }
}

TEST(SecdedTest, CorrectsEverySingleLineError) {
  const SecdedCode code(32, 1);
  const BusState original{0xDEADBEEF & LowMask(32), 1};
  const Word original_check = code.ComputeCheck(original);

  for (unsigned i = 0; i < 33; ++i) {  // every message line
    BusState coded = original;
    Word check = original_check;
    if (i < 32) {
      coded.lines ^= Word{1} << i;
    } else {
      coded.redundant ^= Word{1} << (i - 32);
    }
    EXPECT_EQ(code.CorrectInPlace(coded, check),
              SecdedOutcome::kCorrectedMessage)
        << "message line " << i;
    EXPECT_EQ(coded, original) << "message line " << i;
  }
  for (unsigned j = 0; j < code.check_lines(); ++j) {  // every check line
    BusState coded = original;
    Word check = original_check ^ (Word{1} << j);
    EXPECT_EQ(code.CorrectInPlace(coded, check),
              SecdedOutcome::kCorrectedCheck)
        << "check line " << j;
    EXPECT_EQ(coded, original) << "check line " << j;
    EXPECT_EQ(check, original_check) << "check line " << j;
  }
}

TEST(SecdedTest, DetectsDoubleErrors) {
  const SecdedCode code(32, 1);
  const BusState original{0x00400128, 0};
  const Word original_check = code.ComputeCheck(original);
  for (auto [a, b] : {std::pair{0u, 1u}, std::pair{3u, 17u},
                      std::pair{31u, 32u}, std::pair{10u, 30u}}) {
    BusState coded = original;
    Word check = original_check;
    auto flip = [&](unsigned i) {
      if (i < 32) {
        coded.lines ^= Word{1} << i;
      } else {
        coded.redundant ^= Word{1} << (i - 32);
      }
    };
    flip(a);
    flip(b);
    EXPECT_EQ(code.CorrectInPlace(coded, check), SecdedOutcome::kDoubleError)
        << "lines " << a << "," << b;
  }
}

TEST(SecdedTest, ParityLineSeesEveryOddFlip) {
  const BusState state{0x00400128, 1};
  const Word parity = ComputeParity(state, 32, 1);
  for (unsigned i = 0; i < 32; ++i) {
    BusState flipped = state;
    flipped.lines ^= Word{1} << i;
    EXPECT_NE(ComputeParity(flipped, 32, 1), parity);
  }
  BusState flipped = state;
  flipped.redundant ^= 1;
  EXPECT_NE(ComputeParity(flipped, 32, 1), parity);
}

// ---------------------------------------------------------- fault models

TEST(FaultModelTest, FlipLineCoversAllSegments) {
  const ChannelGeometry geometry{4, 2, 3};
  ChannelFrame frame;
  FlipLine(frame, geometry, 2);   // data
  FlipLine(frame, geometry, 5);   // redundant
  FlipLine(frame, geometry, 7);   // check
  EXPECT_EQ(frame.coded.lines, Word{1} << 2);
  EXPECT_EQ(frame.coded.redundant, Word{1} << 1);
  EXPECT_EQ(frame.check, Word{1} << 1);
  EXPECT_THROW(FlipLine(frame, geometry, 9), std::out_of_range);
}

TEST(FaultModelTest, StuckAtOverridesInsteadOfFlipping) {
  const ChannelGeometry geometry{8, 0, 0};
  StuckAtFault stuck(3, true, 10, 20);
  ChannelFrame frame;
  stuck.Apply(frame, 5, geometry);
  EXPECT_EQ(frame.coded.lines, 0u);  // outside the active range
  stuck.Apply(frame, 10, geometry);
  EXPECT_EQ(frame.coded.lines, Word{1} << 3);
  stuck.Apply(frame, 15, geometry);  // idempotent, not a flip
  EXPECT_EQ(frame.coded.lines, Word{1} << 3);
}

TEST(FaultModelTest, BurstFlipsAdjacentLinesForItsDuration) {
  const ChannelGeometry geometry{8, 0, 0};
  BurstFault burst(10, 2, 3, 2);
  ChannelFrame frame;
  burst.Apply(frame, 9, geometry);
  EXPECT_EQ(frame.coded.lines, 0u);
  burst.Apply(frame, 10, geometry);
  EXPECT_EQ(frame.coded.lines, Word{0b11100});
  burst.Apply(frame, 11, geometry);
  EXPECT_EQ(frame.coded.lines, 0u);  // flipped back: second cycle of burst
  burst.Apply(frame, 12, geometry);
  EXPECT_EQ(frame.coded.lines, 0u);  // burst over
}

TEST(FaultModelTest, NoiseIsDeterministicPerSeed) {
  const auto stream = SequentialStream(400);
  auto run = [&](std::uint64_t seed) {
    BusChannel channel(Configure("t0", Protection::kSecded));
    channel.AddFault(std::make_unique<RandomNoiseFault>(0.01, seed));
    return RunStream(channel, stream);
  };
  const ChannelRunResult a = run(9);
  const ChannelRunResult b = run(9);
  EXPECT_EQ(a.corrupted_addresses, b.corrupted_addresses);
  EXPECT_EQ(a.counters.detected_errors, b.counters.detected_errors);
  EXPECT_GT(a.counters.detected_errors, 0u);
}

TEST(FaultModelTest, RejectsInvalidParameters) {
  EXPECT_THROW(BurstFault(0, 0, 0), ChannelConfigError);
  EXPECT_THROW(RandomNoiseFault(1.5, 1), ChannelConfigError);
  EXPECT_THROW(RandomNoiseFault(-0.1, 1), ChannelConfigError);
}

// -------------------------------------------------------------- channel

TEST(ChannelTest, TransparentWithoutFaultsUnderEveryProtection) {
  SyntheticGenerator gen(7);
  const auto stream = gen.MultiplexedLike(2500, 0.4, 4, 32).ToBusAccesses();
  for (const std::string& code : AllCodecNames()) {
    for (Protection protection :
         {Protection::kNone, Protection::kParity, Protection::kSecded}) {
      for (std::size_t period : {std::size_t{0}, std::size_t{64}}) {
        BusChannel channel(Configure(code, protection, period));
        const ChannelRunResult run = RunStream(channel, stream);
        EXPECT_EQ(run.corrupted_addresses, 0u)
            << code << "/" << ProtectionName(protection) << "/K=" << period;
        EXPECT_EQ(run.counters.detected_errors, 0u)
            << code << "/" << ProtectionName(protection) << "/K=" << period;
      }
    }
  }
}

TEST(ChannelTest, UnprotectedChannelMatchesEvaluatorTransitions) {
  // The channel charges for exactly what Evaluate() counts when no check
  // lines are added — protected/unprotected comparisons share a baseline.
  SyntheticGenerator gen(8);
  const auto stream = gen.InstructionLike(3000, 6.0, 4, 32).ToBusAccesses();
  for (const char* code : {"binary", "t0", "dual-t0-bi", "mtf"}) {
    BusChannel channel(Configure(code));
    const ChannelRunResult run = RunStream(channel, stream);
    auto codec = MakeCodec(code, CodecOptions{});
    const EvalResult eval = Evaluate(*codec, stream);
    EXPECT_EQ(run.wire_transitions, eval.transitions) << code;
  }
}

TEST(ChannelTest, CheckLinesCostTransitions) {
  const auto stream = GzipStream();
  auto transitions = [&](Protection protection) {
    BusChannel channel(Configure("t0", protection));
    return RunStream(channel, stream).wire_transitions;
  };
  const long long bare = transitions(Protection::kNone);
  const long long parity = transitions(Protection::kParity);
  const long long secded = transitions(Protection::kSecded);
  EXPECT_GT(parity, bare);
  EXPECT_GT(secded, parity);
}

TEST(ChannelTest, BeaconFiresEveryKCyclesAndCostsVerbatimFrames) {
  const auto stream = SequentialStream(1000);
  BusChannel beaconless(Configure("t0"));
  BusChannel beaconed(Configure("t0", Protection::kNone, 100));
  const ChannelRunResult base = RunStream(beaconless, stream);
  const ChannelRunResult with = RunStream(beaconed, stream);
  EXPECT_EQ(base.counters.resync_beacons, 0u);
  EXPECT_EQ(with.counters.resync_beacons, 9u);  // cycles 100, 200, ... 900
  // Every beacon breaks a frozen T0 run with one verbatim frame.
  EXPECT_GT(with.wire_transitions, base.wire_transitions);
  EXPECT_EQ(with.corrupted_addresses, 0u);
}

TEST(ChannelTest, RejectsInvalidConfigurations) {
  EXPECT_THROW(BusChannel(Configure("no-such-code")), CodecConfigError);
  ChannelConfig no_detector = Configure("t0", Protection::kNone);
  no_detector.enable_recovery = true;
  EXPECT_THROW(BusChannel{no_detector}, ChannelConfigError);
  ChannelConfig zero_window = Configure("t0", Protection::kParity);
  zero_window.enable_recovery = true;
  zero_window.detection_window = 0;
  EXPECT_THROW(BusChannel{zero_window}, ChannelConfigError);
}

// --------------------------------------------- acceptance: SECDED sweep

TEST(ChannelAcceptanceTest, SecdedZeroCorruptionUnderResilienceSweep) {
  // The exact single-upset sweep bench_error_resilience runs (gzip
  // multiplexed stream, 60 random injections per code, seed 77, plus the
  // fixed probe grid) must decode with ZERO corrupted addresses once
  // SECDED check lines ride along — for every code.
  const auto& stream = GzipStream();
  for (const std::string& code : kResilienceCodes) {
    const ChannelConfig config = Configure(code, Protection::kSecded);
    EXPECT_EQ(AverageUpsetCorruption(config, stream, 60, 77), 0.0) << code;
    for (std::size_t cycle = 500; cycle < stream.size();
         cycle += stream.size() / 12) {
      const UpsetResult r = MeasureSingleUpset(config, stream, cycle, 5);
      EXPECT_EQ(r.corrupted_addresses, 0u)
          << code << " @" << cycle;
      EXPECT_EQ(r.recovery_cycles, 0u) << code << " @" << cycle;
    }
  }
}

// -------------------------------------------- acceptance: beacon bound

TEST(ChannelAcceptanceTest, BeaconBoundsEveryHistoryCodeRecovery) {
  // With a period-K beacon and no ECC, the worst-case recovery span of
  // every history code is <= K: whatever decoder state an upset poisons,
  // the next beacon wipes it at both ends.
  constexpr std::size_t kPeriod = 64;
  const auto& gzip = GzipStream();
  std::vector<BusAccess> probe(gzip.begin(),
                               gzip.begin() + std::min<std::size_t>(
                                                  gzip.size(), 8000));
  for (const std::string& code : kHistoryCodes) {
    const ChannelConfig config =
        Configure(code, Protection::kNone, kPeriod);
    const unsigned lines = BusChannel(config).total_lines();
    for (std::size_t cycle :
         {std::size_t{0}, std::size_t{1}, kPeriod - 1, kPeriod, kPeriod + 1,
          std::size_t{2500}, probe.size() - 1}) {
      for (unsigned line : {0u, 12u, lines - 1}) {
        const UpsetResult r = MeasureSingleUpset(config, probe, cycle, line);
        EXPECT_LE(r.recovery_cycles, kPeriod)
            << code << " cycle " << cycle << " line " << line;
      }
    }
  }
}

TEST(ChannelAcceptanceTest, BeaconBoundHoldsOnPureSequentialWorstCase) {
  // An unbounded in-sequence run is the adversarial stream: T0 never
  // sends a natural binary resync, so a poisoned launch address smears
  // to the end of the stream — unless the beacon caps it.
  const auto stream = SequentialStream(2000);
  const UpsetResult unbounded =
      MeasureSingleUpset(Configure("t0"), stream, 0, 0);
  EXPECT_GT(unbounded.recovery_cycles, 1900u);

  for (const std::string& code : kHistoryCodes) {
    const UpsetResult bounded = MeasureSingleUpset(
        Configure(code, Protection::kNone, 64), stream, 0, 0);
    EXPECT_LE(bounded.recovery_cycles, 64u) << code;
  }
}

// ------------------------------------------------ recovery state machine

TEST(RecoveryTest, FallsBackAfterRepeatedDetectionsAndRepromotes) {
  ChannelConfig config = Configure("t0", Protection::kParity);
  config.enable_recovery = true;
  config.fallback_threshold = 3;
  config.detection_window = 64;
  config.clean_window = 100;

  BusChannel channel(config);
  for (std::size_t cycle : {100, 110, 120}) {
    channel.AddFault(std::make_unique<SingleUpsetFault>(cycle, 0));
  }
  const auto stream = SequentialStream(600);
  const ChannelRunResult run = RunStream(channel, stream);

  // Three detections inside the window demote the channel after cycle
  // 120; 100 clean cycles later it promotes back and stays there.
  EXPECT_EQ(run.counters.detected_errors, 3u);
  EXPECT_EQ(run.counters.fallbacks, 1u);
  EXPECT_EQ(run.counters.repromotions, 1u);
  EXPECT_EQ(run.counters.cycles_in_fallback, 100u);
  EXPECT_EQ(run.final_mode, ChannelMode::kActive);
  // All three upsets hit frozen T0 cycles: parity saw them, the decoder
  // never did, and both code switches were loss-free.
  EXPECT_EQ(run.corrupted_addresses, 0u);
}

TEST(RecoveryTest, DemotionBoundsAnAccumulatingDecoderSmear) {
  // The offset code accumulates decode errors forever (no resync
  // channel). Without recovery one upset poisons the rest of the stream;
  // with parity + recovery the machine demotes to binary on detection,
  // so exactly the struck cycle decodes wrong.
  const auto stream = SequentialStream(1500);
  const UpsetResult bare =
      MeasureSingleUpset(Configure("offset"), stream, 100, 3);
  EXPECT_GT(bare.corrupted_addresses, 1000u);

  ChannelConfig config = Configure("offset", Protection::kParity);
  config.enable_recovery = true;
  config.fallback_threshold = 1;
  config.detection_window = 16;
  config.clean_window = 50;
  BusChannel channel(config);
  channel.AddFault(std::make_unique<SingleUpsetFault>(100, 3));
  const ChannelRunResult run = RunStream(channel, stream);
  EXPECT_EQ(run.corrupted_addresses, 1u);
  EXPECT_EQ(run.counters.fallbacks, 1u);
  EXPECT_EQ(run.counters.repromotions, 1u);
  EXPECT_EQ(run.final_mode, ChannelMode::kActive);
}

TEST(RecoveryTest, StuckLineKeepsSecdedChannelCleanAndFlagged) {
  // A stuck-at-0 driver corrupts every cycle that drives the line high.
  // SECDED repairs each one; the counters expose the failing line's
  // activity so a deployment can alarm long before a second fault lands.
  const auto stream = SequentialStream(800);
  BusChannel bare(Configure("binary"));
  bare.AddFault(std::make_unique<StuckAtFault>(3, false));
  EXPECT_GT(RunStream(bare, stream).corrupted_addresses, 100u);

  BusChannel protected_channel(Configure("binary", Protection::kSecded));
  protected_channel.AddFault(std::make_unique<StuckAtFault>(3, false));
  const ChannelRunResult run = RunStream(protected_channel, stream);
  EXPECT_EQ(run.corrupted_addresses, 0u);
  EXPECT_GT(run.counters.corrected_errors, 100u);
  EXPECT_EQ(run.counters.corrected_errors, run.counters.detected_errors);
}

TEST(RecoveryTest, ParityMissesEvenBurstsSecdedDetectsThem) {
  // The parity line's blind spot: an even-width burst flips parity back.
  // SECDED sees the same burst as a double error — detected, though not
  // correctable. This is the quantitative case for the wider layer.
  const auto stream = SequentialStream(300);
  BusChannel parity(Configure("binary", Protection::kParity));
  parity.AddFault(std::make_unique<BurstFault>(50, 2, 2));
  const ChannelRunResult parity_run = RunStream(parity, stream);
  EXPECT_EQ(parity_run.counters.detected_errors, 0u);
  EXPECT_EQ(parity_run.corrupted_addresses, 1u);

  BusChannel secded(Configure("binary", Protection::kSecded));
  secded.AddFault(std::make_unique<BurstFault>(50, 2, 2));
  const ChannelRunResult secded_run = RunStream(secded, stream);
  EXPECT_EQ(secded_run.counters.uncorrectable_errors, 1u);
  EXPECT_EQ(secded_run.corrupted_addresses, 1u);
}

}  // namespace
}  // namespace abenc
