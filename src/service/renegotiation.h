// Server-side renegotiation policy: reads a session's windowed
// stream-shape statistics (AdaptiveWindowStats, the same quantities the
// adaptive meta-codec decides from) and proposes the palette member the
// paper's results predict for that traffic regime. The policy only
// *recommends* — the switch itself is pinned and applied by
// Session::Renegotiate, and a client is free to ignore the hint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/adaptive_codec.h"

namespace abenc::service {

struct RenegotiationPolicy {
  /// Candidate codecs, factory names. Mirrors the adaptive codec's
  /// default palette: the paper's regime winners plus binary.
  std::vector<std::string> palette = {"binary", "gray", "t0", "bus-invert",
                                      "dual-t0-bi"};

  /// A window with fewer accesses than this carries too little signal
  /// to recommend anything (e.g. the tracker has not rolled yet).
  std::size_t min_window_accesses = 32;

  /// In-sequence percentage above which the stream counts as sequential
  /// (T0's regime: the paper's in-order instruction fetch traces).
  double sequential_in_seq_percent = 60.0;

  /// SEL-high fraction inside [low, high] marks a genuinely multiplexed
  /// stream, where the dual codes' per-source histories win.
  double mixed_sel_low = 0.25;
  double mixed_sel_high = 0.75;

  /// Toggle density (raw toggles per access) above width * fraction
  /// marks a random-like stream — bus-invert's bounded-peak regime.
  double dense_toggle_fraction = 0.25;

  /// Fraction of steps on the +1 stride that marks unit-stride counting
  /// (Gray's regime when the configured stride stays cold).
  double unit_stride_fraction = 0.5;

  /// Recommend a palette member for the observed window, or "" to keep
  /// the active codec (insufficient signal, no regime matched, or the
  /// match is already active). `width` is the bus width the density
  /// threshold scales with; `active` is the session's current codec.
  std::string Recommend(const AdaptiveWindowStats& window, unsigned width,
                        const std::string& active) const;

  bool InPalette(const std::string& codec_name) const;
};

}  // namespace abenc::service
