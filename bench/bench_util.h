// Shared driver for the Table 2-7 benches: runs the nine benchmark
// programs, evaluates a list of codes on one of the three bus streams and
// prints the paper-shaped table.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/program_library.h"

namespace abenc::bench {

/// Which of the three buses of Tables 2-7 to evaluate.
enum class StreamKind { kInstruction, kData, kMultiplexed };

/// Command-line knobs shared by every table bench.
struct BenchOptions {
  /// Write the table's `abenc.comparison.v1` JSON document here
  /// (empty: ASCII only). This is what the CI regression gate diffs
  /// against bench/baselines/.
  std::string json_path;
  /// Worker threads for the experiment engine; 0 = one per hardware
  /// thread, 1 = the sequential path. Results are identical either way.
  unsigned parallelism = 0;
  /// Chunk length of the batched evaluation path (0 = the library
  /// default, kDefaultChunkSize). Bit-identical at every setting.
  std::size_t chunk_size = 0;
  /// Evaluate through the legacy per-word loop instead of the batched
  /// kernels. Exists for A/B timing and the CI byte-diff gate; results
  /// are identical either way.
  bool per_word = false;
  /// Write an `abenc.metrics.v1` document of everything the run's
  /// instrumentation recorded here (empty: observability stays off and
  /// costs nothing). Metrics never feed back into results: a --metrics
  /// run produces bit-identical tables and --json documents.
  std::string metrics_path;
};

/// Parse `--json <path>` / `--json=<path>`, `--parallelism <n>` /
/// `--parallelism=<n>`, `--chunk-size <n>` / `--chunk-size=<n>`,
/// `--per-word` and `--metrics <path>` / `--metrics=<path>`.
/// Unknown arguments are ignored so the benches stay runnable under
/// generic harnesses (e.g. the CI smoke loop passes google-benchmark
/// flags to every binary). Throws std::invalid_argument when a
/// recognized flag is missing its value.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// Owns the bench's MetricsRegistry: when `path` is nonempty the
/// registry is installed process-wide for the session's lifetime (so
/// every instrumented layer records into it) and WriteIfEnabled()
/// exports the `abenc.metrics.v1` document. With an empty path the
/// session is inert and the instrumentation stays on its zero-cost
/// disabled path.
class MetricsSession {
 public:
  explicit MetricsSession(std::string path);
  ~MetricsSession();

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  bool enabled() const { return registry_ != nullptr; }
  obs::MetricsRegistry* registry() { return registry_.get(); }

  /// Write the snapshot to the session path and print a note; no-op when
  /// disabled.
  void WriteIfEnabled();

 private:
  std::string path_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::optional<obs::ScopedInstall> install_;
};

/// Print one experimental table: a row per benchmark with stream length,
/// in-sequence percentage, binary transition count, and per-code
/// transition counts with savings, then the paper-style "Average" row of
/// column means. Every code is also round-trip verified while encoding.
/// With `options.json_path` set, additionally write the machine-readable
/// document (see report/json_writer.h for the schema).
void PrintExperimentalTable(const std::string& title, StreamKind kind,
                            const std::vector<std::string>& codec_names,
                            const BenchOptions& options = {});

/// The stream of `kind` from one benchmark run.
const AddressTrace& SelectStream(const sim::ProgramTraces& traces,
                                 StreamKind kind);

}  // namespace abenc::bench
