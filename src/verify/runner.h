// The property runner: enumerates every (property, codec, stream family)
// instance reachable from codec_factory, fuzzes each with deterministic
// derived seeds, and turns any failure into a one-line reproducer
// (`verify_runner --seed N --property P`) plus a ddmin-minimized stream
// dump. The ctest suite and the CI verify-smoke step both run through
// this class, so a red property is always replayable from its printout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/minimize.h"
#include "verify/oracles.h"
#include "verify/properties.h"
#include "verify/stream_gen.h"

namespace abenc::verify {

/// Fuzzing shape shared by every property instance.
struct VerifyConfig {
  std::uint64_t seed = 1;        // base seed; iteration i runs at seed + i
  std::size_t iterations = 4;    // fuzz streams per property instance
  std::size_t stream_length = 512;
  unsigned width = 32;           // bus width for every codec under test
  Word stride = 4;               // sequential step S
  std::string property_filter;   // exact name or substring; empty = all
  bool minimize = true;          // ddmin failing streams before reporting
  CodecFactoryFn factory;        // empty = MakeCodec (tests inject bugs)
};

/// One caught failure, carrying everything needed to replay it.
struct VerifyFailure {
  std::string property;     // qualified name, e.g. "round-trip:t0:boundary"
  std::uint64_t seed = 0;   // base seed that reproduces at iteration 0
  std::size_t index = 0;    // stream index where the invariant broke
  std::string message;      // human-readable diagnosis
  std::vector<BusAccess> minimized;  // minimal stream still failing
  std::string reproducer;   // the one-line `verify_runner ...` command
};

class VerifyRunner {
 public:
  explicit VerifyRunner(VerifyConfig config);

  /// Qualified names of every property instance the config reaches
  /// (after the filter): `<property>:<codec>:<family>` for the
  /// universal suite, `gate:<codec>:<family>` and `markov:<codec>` for
  /// the differential oracles, and `parallel-identity`.
  std::vector<std::string> PropertyNames() const;

  /// Run every matching instance for every iteration. Returns all
  /// failures (one per instance at most — an instance stops at its
  /// first failing seed).
  std::vector<VerifyFailure> Run() const;

  /// Human-readable report: the reproducer line plus the minimized
  /// stream dump (at most `max_dump` accesses).
  static std::string FormatFailure(const VerifyFailure& failure,
                                   std::size_t max_dump = 32);

 private:
  VerifyConfig config_;
};

}  // namespace abenc::verify
