// Table 6: mixed encoding schemes (T0_BI, dual T0, dual T0_BI) on the
// dedicated *data* address bus of the nine benchmarks.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  abenc::bench::PrintExperimentalTable(
      "Table 6: Mixed Encoding Schemes, Data Address Streams",
      abenc::bench::StreamKind::kData, {"t0-bi", "dual-t0", "dual-t0-bi"},
      abenc::bench::ParseBenchOptions(argc, argv));
  return 0;
}
