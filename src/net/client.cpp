#include "net/client.h"

#include <sys/socket.h>

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

namespace abenc::net {

Client::Client(ClientOptions options) {
  const Endpoint endpoint = ParseEndpoint(options.endpoint);
  fd_ = DialEndpoint(endpoint, options.io_timeout);
  try {
    HelloRequest hello;
    hello.version_max = options.version_max;
    hello.capabilities = options.capabilities;
    const Frame frame = Transact(FrameType::kHello, EncodeHello(hello),
                                 FrameType::kHelloOk);
    const HelloReply reply = DecodeHelloOk(frame.payload);
    max_frame_bytes_ = reply.max_frame_bytes;
    version_ = reply.version;
    caps_ = reply.capabilities;
  } catch (...) {
    Abort();
    throw;
  }
}

Client::~Client() { Abort(); }

OpenReply Client::Open(const OpenRequest& request) {
  const Frame reply =
      Transact(FrameType::kOpen, EncodeOpen(request), FrameType::kOpenOk);
  return DecodeOpenOk(reply.payload);
}

AttachReply Client::Attach(std::uint64_t session_id, std::uint64_t token) {
  AttachRequest request;
  request.session_id = session_id;
  request.token = token;
  const Frame reply = Transact(FrameType::kAttach, EncodeAttach(request),
                               FrameType::kAttachOk);
  return DecodeAttachOk(reply.payload, caps_);
}

SubmitAck Client::Submit(std::uint64_t session_id,
                         std::span<const BusAccess> batch) {
  const Frame reply = Transact(FrameType::kSubmit,
                               EncodeSubmit(session_id, batch),
                               FrameType::kSubmitAck);
  return DecodeSubmitAck(reply.payload, caps_);
}

StatsReply Client::DrainStats(std::uint64_t session_id, bool wait_drained) {
  DrainStatsRequest request;
  request.session_id = session_id;
  request.wait_drained = wait_drained;
  const Frame reply = Transact(FrameType::kDrainStats,
                               EncodeDrainStats(request), FrameType::kStats);
  return DecodeStats(reply.payload, caps_);
}

RenegotiateReply Client::Renegotiate(std::uint64_t session_id,
                                     const std::string& codec) {
  if ((caps_ & kCapRenegotiate) == 0) {
    throw WireError(Status::kBadFrame,
                    "RENEGOTIATE requires the renegotiate capability");
  }
  RenegotiateRequest request;
  request.session_id = session_id;
  request.codec = codec;
  const Frame reply = Transact(FrameType::kRenegotiate,
                               EncodeRenegotiate(request),
                               FrameType::kRenegotiateAck);
  return DecodeRenegotiateAck(reply.payload);
}

StreamSubmitResult Client::SubmitColumns(std::uint64_t session_id,
                                         const Word* addresses,
                                         const std::uint8_t* sel,
                                         std::uint64_t count,
                                         const StreamSubmitOptions& options) {
  if ((caps_ & kCapPipeline) == 0) {
    throw WireError(Status::kBadFrame,
                    "SUBMIT_STREAM requires the pipeline capability");
  }
  const std::size_t chunk = std::max<std::size_t>(1, options.chunk);
  const std::size_t window = std::max<std::size_t>(1, options.window);
  const std::size_t ack_interval =
      std::max<std::size_t>(1, options.ack_interval);

  struct InFlight {
    std::uint64_t offset = 0;
    std::size_t count = 0;
  };
  std::deque<InFlight> inflight;
  StreamSubmitResult result;
  std::uint64_t next = options.start;  // next lifetime index to send
  result.accepted = options.start;
  std::size_t since_ack = 0;

  // Receive one SUBMIT_ACK and fold it into the window state. Returns
  // false once the stream should stop (input closed server-side).
  const auto consume_ack = [&]() -> bool {
    Frame frame = ReadFrame();
    if (frame.type == FrameType::kError) {
      const ErrorReply error = DecodeError(frame.payload);
      throw WireError(error.status, error.message);
    }
    if (frame.type != FrameType::kSubmitAck) {
      throw WireError(Status::kBadFrame,
                      "expected SUBMIT_ACK, got " +
                          FrameTypeName(frame.type));
    }
    const SubmitAck ack = DecodeSubmitAck(frame.payload, caps_);
    if (!ack.recommended_codec.empty()) {
      result.last_recommendation = ack.recommended_codec;
    }
    result.accepted = ack.accepted;
    // Everything the server's count covers was admitted — including
    // unacked frames that preceded an acked one.
    while (!inflight.empty() &&
           inflight.front().offset + inflight.front().count <=
               ack.accepted) {
      inflight.pop_front();
    }
    if (ack.status == Status::kOk) return true;
    if (ack.status == Status::kSlowDown) {
      ++result.slowdowns;
      return true;
    }
    // kRejected (admission or offset guard) / kClosed: the acked frame
    // is the front of the deque — nothing of it was queued. Every frame
    // still in flight behind it will fail the offset guard, and each
    // such rejection is acked; drain those acks so the connection stays
    // in sync, then rewind to the server's authoritative count.
    ++result.rejections;
    if (!inflight.empty()) inflight.pop_front();
    const std::size_t trailing = inflight.size();
    inflight.clear();
    for (std::size_t i = 0; i < trailing; ++i) {
      Frame f = ReadFrame();
      if (f.type == FrameType::kError) {
        const ErrorReply error = DecodeError(f.payload);
        throw WireError(error.status, error.message);
      }
      if (f.type != FrameType::kSubmitAck) {
        throw WireError(Status::kBadFrame,
                        "expected SUBMIT_ACK, got " + FrameTypeName(f.type));
      }
      const SubmitAck trailer = DecodeSubmitAck(f.payload, caps_);
      result.accepted = trailer.accepted;
      ++result.rejections;
    }
    next = result.accepted;
    since_ack = 0;
    if (ack.status == Status::kClosed) {
      result.closed = true;
      return false;
    }
    // Admission rejection: give the queue a moment to drain before the
    // rewound frames go out again.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return true;
  };

  bool streaming = true;
  while (streaming && (next < count || !inflight.empty())) {
    while (next < count && inflight.size() < window) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk, count - next));
      ++since_ack;
      // The frame that fills the window and the final frame always ask
      // for an ack — otherwise a sparse ack_interval could leave the
      // loop waiting on an ack nobody owes it.
      const bool want_ack = since_ack >= ack_interval ||
                            inflight.size() + 1 == window ||
                            next + n == count;
      if (want_ack) since_ack = 0;
      SendRaw(EncodeFrame(FrameType::kSubmitStream,
                          EncodeSubmitStream(session_id, next, want_ack,
                                             addresses + next, sel + next,
                                             n)));
      inflight.push_back({next, n});
      next += n;
    }
    if (inflight.empty()) break;
    streaming = consume_ack();
  }
  return result;
}

CloseReply Client::Close(std::uint64_t session_id) {
  CloseRequest request;
  request.session_id = session_id;
  const Frame reply = Transact(FrameType::kClose, EncodeClose(request),
                               FrameType::kCloseOk);
  return DecodeCloseOk(reply.payload);
}

void Client::SendRaw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw NetError("Client: socket already closed");
  SendAll(fd_, bytes.data(), bytes.size());
}

Frame Client::ReadFrame() {
  if (fd_ < 0) throw NetError("Client: socket already closed");
  for (;;) {
    std::optional<Frame> frame =
        TryExtractFrame(in_, static_cast<std::size_t>(max_frame_bytes_));
    if (frame.has_value()) return std::move(*frame);
    std::uint8_t chunk[65536];
    const std::size_t n = RecvSome(fd_, chunk, sizeof(chunk));
    if (n == 0) throw NetError("connection closed by server");
    in_.insert(in_.end(), chunk, chunk + n);
  }
}

void Client::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Abort() {
  CloseFd(fd_);
  fd_ = -1;
}

Frame Client::Transact(FrameType type,
                       std::span<const std::uint8_t> payload,
                       FrameType expected) {
  const std::vector<std::uint8_t> bytes = EncodeFrame(type, payload);
  SendRaw(bytes);
  Frame reply = ReadFrame();
  if (reply.type == FrameType::kError) {
    const ErrorReply error = DecodeError(reply.payload);
    throw WireError(error.status, error.message);
  }
  if (reply.type != expected) {
    throw WireError(Status::kBadFrame,
                    "expected " + FrameTypeName(expected) + ", got " +
                        FrameTypeName(reply.type));
  }
  return reply;
}

}  // namespace abenc::net
