file(REMOVE_RECURSE
  "CMakeFiles/bench_adder_style.dir/bench_adder_style.cpp.o"
  "CMakeFiles/bench_adder_style.dir/bench_adder_style.cpp.o.d"
  "bench_adder_style"
  "bench_adder_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
