#include "core/simd/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace abenc::simd {
namespace {

const KernelTable* TableFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &ScalarKernels();
    case KernelBackend::kAvx2:
#if defined(ABENC_HAVE_AVX2)
      return &Avx2Kernels();
#else
      return nullptr;
#endif
    case KernelBackend::kNeon:
#if defined(ABENC_HAVE_NEON)
      return &NeonKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool HostSupports(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if defined(ABENC_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelBackend::kNeon:
      // NEON is baseline on aarch64; compiled-in implies executable.
#if defined(ABENC_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::string JoinNames(const std::vector<KernelBackend>& backends) {
  std::ostringstream out;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (i != 0) out << ", ";
    out << BackendName(backends[i]);
  }
  return out.str();
}

// The active table, resolved lazily so ABENC_KERNEL is read exactly
// once, at first kernel use. A benign init race (two threads resolving
// the same value) is harmless: both compute identical pointers.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveInitialTable() {
  const char* env = std::getenv("ABENC_KERNEL");
  if (env != nullptr && *env != '\0') {
    return TableFor(ResolveBackend(env));
  }
  return TableFor(SupportedBackends().back());
}

}  // namespace

const char* BackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<KernelBackend> CompiledBackends() {
  std::vector<KernelBackend> backends{KernelBackend::kScalar};
#if defined(ABENC_HAVE_AVX2)
  backends.push_back(KernelBackend::kAvx2);
#endif
#if defined(ABENC_HAVE_NEON)
  backends.push_back(KernelBackend::kNeon);
#endif
  return backends;
}

std::vector<KernelBackend> SupportedBackends() {
  std::vector<KernelBackend> backends;
  for (KernelBackend backend : CompiledBackends()) {
    if (HostSupports(backend)) backends.push_back(backend);
  }
  return backends;
}

KernelBackend ResolveBackend(const std::string& name) {
  KernelBackend backend;
  if (name == "scalar") {
    backend = KernelBackend::kScalar;
  } else if (name == "avx2") {
    backend = KernelBackend::kAvx2;
  } else if (name == "neon") {
    backend = KernelBackend::kNeon;
  } else {
    throw std::invalid_argument(
        "unknown kernel backend '" + name +
        "' (expected one of: scalar, avx2, neon)");
  }
  if (TableFor(backend) == nullptr) {
    throw std::runtime_error("kernel backend '" + name +
                             "' is not compiled into this binary (compiled: " +
                             JoinNames(CompiledBackends()) + ")");
  }
  if (!HostSupports(backend)) {
    throw std::runtime_error("kernel backend '" + name +
                             "' is not executable on this host (supported: " +
                             JoinNames(SupportedBackends()) + ")");
  }
  return backend;
}

KernelBackend ActiveBackend() {
  const KernelTable* active = &ActiveKernels();
  for (KernelBackend backend : CompiledBackends()) {
    if (TableFor(backend) == active) return backend;
  }
  return KernelBackend::kScalar;
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = ResolveInitialTable();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void SetActiveBackend(KernelBackend backend) {
  // Route through ResolveBackend's validation so a forced backend obeys
  // the same compiled-in + host-executable rules as ABENC_KERNEL.
  const KernelBackend validated = ResolveBackend(BackendName(backend));
  g_active.store(TableFor(validated), std::memory_order_release);
}

}  // namespace abenc::simd
