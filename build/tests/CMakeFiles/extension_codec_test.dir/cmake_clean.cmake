file(REMOVE_RECURSE
  "CMakeFiles/extension_codec_test.dir/extension_codec_test.cpp.o"
  "CMakeFiles/extension_codec_test.dir/extension_codec_test.cpp.o.d"
  "extension_codec_test"
  "extension_codec_test.pdb"
  "extension_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
