// Tests of the gate-level substrate: netlist construction, simulation
// semantics, power accounting, and — crucially — cycle-by-cycle
// equivalence of the synthesised codecs with their behavioural models.
#include <gtest/gtest.h>

#include <random>

#include "core/binary_codec.h"
#include "core/bus_invert_codec.h"
#include "core/codec_factory.h"
#include "core/dual_t0_codec.h"
#include "core/dual_t0bi_codec.h"
#include "core/t0_codec.h"
#include "core/t0bi_codec.h"
#include "gate/circuits.h"
#include "gate/power.h"
#include "gate/simulator.h"
#include "gate/timing.h"
#include "trace/synthetic.h"

namespace abenc::gate {
namespace {

// ---------------------------------------------------------------------------
// Netlist and simulator basics
// ---------------------------------------------------------------------------

TEST(NetlistTest, CombinationalGatesEvaluate) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x = nl.Add(CellKind::kXor2, a, b);
  const NetId n = nl.Add(CellKind::kNand2, a, b);
  const NetId m = nl.Add(CellKind::kMux2, a, b, x);

  GateSimulator sim(nl);
  sim.Cycle({{a, true}, {b, false}});
  EXPECT_TRUE(sim.Value(x));
  EXPECT_TRUE(sim.Value(n));
  EXPECT_FALSE(sim.Value(m));  // sel=1 -> b
  sim.Cycle({{a, true}, {b, true}});
  EXPECT_FALSE(sim.Value(x));
  EXPECT_FALSE(sim.Value(n));
  EXPECT_TRUE(sim.Value(m));  // sel=0 -> a
}

TEST(NetlistTest, FlopDelaysByOneCycle) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId q = nl.AddFlop("q");
  nl.ConnectFlop(q, a);
  GateSimulator sim(nl);
  sim.Cycle({{a, true}});
  EXPECT_FALSE(sim.Value(q));  // reset state visible during first cycle
  sim.Cycle({{a, false}});
  EXPECT_TRUE(sim.Value(q));
  sim.Cycle({{a, false}});
  EXPECT_FALSE(sim.Value(q));
}

TEST(NetlistTest, UnconnectedFlopIsRejected) {
  Netlist nl;
  nl.AddFlop("q");
  EXPECT_THROW(GateSimulator sim(nl), std::logic_error);
}

TEST(NetlistTest, ForwardReferenceIsRejected) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  EXPECT_THROW(nl.Add(CellKind::kAnd2, a, 999), std::logic_error);
}

TEST(NetlistTest, MissingInputValueIsRejected) {
  Netlist nl;
  nl.AddInput("a");
  GateSimulator sim(nl);
  EXPECT_THROW(sim.Cycle({}), std::invalid_argument);
}

TEST(SimulatorTest, CountsToggles) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId inv = nl.Add(CellKind::kInv, a);
  GateSimulator sim(nl);
  for (int i = 0; i < 10; ++i) sim.Cycle({{a, i % 2 == 1}});
  EXPECT_EQ(sim.toggles(a), 9u);    // 0->1->0... from initial 0
  EXPECT_EQ(sim.toggles(inv), 10u); // starts false, first eval -> true
}

TEST(PowerTest, ScalesWithActivityAndLoad) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId buf = nl.Add(CellKind::kBuf, a);
  nl.MarkOutput(buf, "out", 10.0);
  GateSimulator sim(nl);
  for (int i = 0; i < 1000; ++i) sim.Cycle({{a, i % 2 == 1}});
  const PowerReport toggling = EstimatePower(nl, sim);
  // alpha ~ 1, C ~ 10 pF, 3.3 V, 100 MHz -> ~5.4 mW on the output.
  EXPECT_NEAR(toggling.output_mw, 0.5 * 10.014e-12 * 3.3 * 3.3 * 1e8 * 1e3,
              0.1);

  GateSimulator quiet(nl);
  for (int i = 0; i < 1000; ++i) quiet.Cycle({{a, true}});
  EXPECT_LT(EstimatePower(nl, quiet).total_mw, 0.01);
}

TEST(PowerTest, PadPowerUsesExternalLoad) {
  Netlist nl;
  const NetId a = nl.AddInput("a");
  const NetId buf = nl.Add(CellKind::kBuf, a);
  nl.MarkOutput(buf, "out", kPadInputCapacitancePf);
  GateSimulator sim(nl);
  for (int i = 0; i < 1000; ++i) sim.Cycle({{a, i % 2 == 1}});
  const double p50 = PadPowerMw(nl, sim, 50.0);
  const double p100 = PadPowerMw(nl, sim, 100.0);
  EXPECT_NEAR(p100 / p50, 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Gate codecs vs behavioural codecs, cycle by cycle
// ---------------------------------------------------------------------------

struct GatePair {
  CodecCircuit encoder;
  CodecCircuit decoder;
};

void CheckEquivalence(Codec& reference, const CodecCircuit& enc,
                      const CodecCircuit& dec,
                      const std::vector<BusAccess>& stream) {
  GateSimulator enc_sim(enc.netlist);
  GateSimulator dec_sim(dec.netlist);
  reference.Reset();
  const unsigned width = static_cast<unsigned>(enc.address_in.size());
  for (std::size_t t = 0; t < stream.size(); ++t) {
    const Word b = stream[t].address & LowMask(width);
    const bool sel = stream[t].sel;
    const BusState expected = reference.Encode(b, sel);

    enc_sim.Cycle(DriveInputs(enc, b, sel));
    const Word enc_lines = ReadBus(enc_sim, enc.data_out);
    const Word enc_red = ReadBus(enc_sim, enc.redundant_out);
    ASSERT_EQ(enc_lines, expected.lines) << "cycle " << t;
    ASSERT_EQ(enc_red, expected.redundant) << "cycle " << t;

    const Word expected_b = reference.Decode(expected, sel);
    dec_sim.Cycle(DriveInputs(dec, enc_lines, sel, enc_red));
    ASSERT_EQ(ReadBus(dec_sim, dec.data_out), expected_b) << "cycle " << t;
    ASSERT_EQ(expected_b, b) << "cycle " << t;
  }
}

std::vector<BusAccess> MixedStream(unsigned width, std::size_t count) {
  SyntheticGenerator gen(17);
  const AddressTrace trace = gen.MultiplexedLike(count, 0.4, 4, width);
  return trace.ToBusAccesses();
}

TEST(GateCodecTest, BinaryEncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  BinaryCodec reference(width);
  CheckEquivalence(reference, BuildBinaryEncoder(width, 0.2),
                   BuildBinaryDecoder(width, 0.2), MixedStream(width, 500));
}

TEST(GateCodecTest, T0EncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  T0Codec reference(width, 4);
  CheckEquivalence(reference, BuildT0Encoder(width, 4, 0.2),
                   BuildT0Decoder(width, 4, 0.2), MixedStream(width, 500));
}

TEST(GateCodecTest, T0EncoderMatchesOnPureSequentialRuns) {
  const unsigned width = 16;
  T0Codec reference(width, 4);
  std::vector<BusAccess> stream;
  for (Word a = 0x1000; a < 0x1400; a += 4) stream.push_back({a, true});
  CheckEquivalence(reference, BuildT0Encoder(width, 4, 0.2),
                   BuildT0Decoder(width, 4, 0.2), stream);
}

TEST(GateCodecTest, BusInvertEncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  BusInvertCodec reference(width);
  CheckEquivalence(reference, BuildBusInvertEncoder(width, 0.2),
                   BuildBusInvertDecoder(width, 0.2),
                   MixedStream(width, 500));
}

TEST(GateCodecTest, T0BIEncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  T0BICodec reference(width, 4);
  CheckEquivalence(reference, BuildT0BIEncoder(width, 4, 0.2),
                   BuildT0BIDecoder(width, 4, 0.2), MixedStream(width, 800));
}

TEST(GateCodecTest, DualT0EncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  DualT0Codec reference(width, 4);
  CheckEquivalence(reference, BuildDualT0Encoder(width, 4, 0.2),
                   BuildDualT0Decoder(width, 4, 0.2),
                   MixedStream(width, 800));
}

TEST(GateCodecTest, EveryPaperCodeHasAnEquivalentNetlistAtFullWidth) {
  const unsigned width = 32;
  const auto stream = MixedStream(width, 200);
  {
    T0BICodec reference(width, 4);
    CheckEquivalence(reference, BuildT0BIEncoder(width, 4, 0.2),
                     BuildT0BIDecoder(width, 4, 0.2), stream);
  }
  {
    DualT0Codec reference(width, 4);
    CheckEquivalence(reference, BuildDualT0Encoder(width, 4, 0.2),
                     BuildDualT0Decoder(width, 4, 0.2), stream);
  }
  {
    BusInvertCodec reference(width);
    CheckEquivalence(reference, BuildBusInvertEncoder(width, 0.2),
                     BuildBusInvertDecoder(width, 0.2), stream);
  }
}

TEST(GateCodecTest, DualT0BIEncoderMatchesBehaviouralModel) {
  const unsigned width = 16;
  DualT0BICodec reference(width, 4);
  CheckEquivalence(reference, BuildDualT0BIEncoder(width, 4, 0.2),
                   BuildDualT0BIDecoder(width, 4, 0.2),
                   MixedStream(width, 800));
}

TEST(GateCodecTest, DualT0BIMatchesAtFullBusWidth) {
  const unsigned width = 32;
  DualT0BICodec reference(width, 4);
  CheckEquivalence(reference, BuildDualT0BIEncoder(width, 4, 0.2),
                   BuildDualT0BIDecoder(width, 4, 0.2),
                   MixedStream(width, 300));
}

// ---------------------------------------------------------------------------
// Parameterised equivalence sweep: every paper code x width x adder style
// ---------------------------------------------------------------------------

struct SweepParam {
  const char* code;  // factory name
  unsigned width;
  AdderStyle style;
};

class GateEquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GateEquivalenceSweep, NetlistMatchesBehaviouralCodec) {
  const SweepParam& param = GetParam();
  const unsigned w = param.width;
  const Word s = 4;
  const double load = 0.2;
  CodecOptions options;
  options.width = w;
  options.stride = s;
  auto reference = MakeCodec(param.code, options);

  CodecCircuit enc;
  CodecCircuit dec;
  const std::string code = param.code;
  if (code == "binary") {
    enc = BuildBinaryEncoder(w, load);
    dec = BuildBinaryDecoder(w, load);
  } else if (code == "t0") {
    enc = BuildT0Encoder(w, s, load, param.style);
    dec = BuildT0Decoder(w, s, load, param.style);
  } else if (code == "bus-invert") {
    enc = BuildBusInvertEncoder(w, load);
    dec = BuildBusInvertDecoder(w, load);
  } else if (code == "t0-bi") {
    enc = BuildT0BIEncoder(w, s, load, param.style);
    dec = BuildT0BIDecoder(w, s, load, param.style);
  } else if (code == "dual-t0") {
    enc = BuildDualT0Encoder(w, s, load, param.style);
    dec = BuildDualT0Decoder(w, s, load, param.style);
  } else {
    enc = BuildDualT0BIEncoder(w, s, load, param.style);
    dec = BuildDualT0BIDecoder(w, s, load, param.style);
  }
  CheckEquivalence(*reference, enc, dec, MixedStream(w, 300));
}

INSTANTIATE_TEST_SUITE_P(
    PaperCodes, GateEquivalenceSweep,
    ::testing::Values(
        SweepParam{"binary", 8, AdderStyle::kRipple},
        SweepParam{"binary", 32, AdderStyle::kRipple},
        SweepParam{"t0", 8, AdderStyle::kRipple},
        SweepParam{"t0", 24, AdderStyle::kPrefix},
        SweepParam{"t0", 32, AdderStyle::kPrefix},
        SweepParam{"bus-invert", 8, AdderStyle::kRipple},
        SweepParam{"bus-invert", 24, AdderStyle::kRipple},
        SweepParam{"t0-bi", 8, AdderStyle::kRipple},
        SweepParam{"t0-bi", 24, AdderStyle::kPrefix},
        SweepParam{"t0-bi", 32, AdderStyle::kRipple},
        SweepParam{"dual-t0", 8, AdderStyle::kPrefix},
        SweepParam{"dual-t0", 24, AdderStyle::kRipple},
        SweepParam{"dual-t0-bi", 8, AdderStyle::kRipple},
        SweepParam{"dual-t0-bi", 24, AdderStyle::kPrefix},
        SweepParam{"dual-t0-bi", 32, AdderStyle::kPrefix},
        SweepParam{"t0", 64, AdderStyle::kPrefix},
        SweepParam{"dual-t0-bi", 64, AdderStyle::kRipple}),
    [](const auto& info) {
      std::string name = info.param.code;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(info.param.width) +
             (info.param.style == AdderStyle::kPrefix ? "_prefix"
                                                      : "_ripple");
    });

TEST(GateCodecTest, T0EncoderIsQuietOnSequentialStreams) {
  const unsigned width = 32;
  CodecCircuit enc = BuildT0Encoder(width, 4, 0.5);
  GateSimulator sim(enc.netlist);
  for (Word a = 0; a < 400; a += 4) sim.Cycle(DriveInputs(enc, a, true));
  std::uint64_t output_toggles = 0;
  for (NetId n : enc.data_out) output_toggles += sim.toggles(n);
  EXPECT_EQ(output_toggles, 0u) << "frozen bus lines must not switch";
}

TEST(GateCodecTest, DualT0BIEncoderCostsMoreThanT0) {
  // Section 4.2's qualitative claim: the dual T0_BI encoder burns roughly
  // an order of magnitude more than the T0 encoder at small on-chip loads.
  const unsigned width = 32;
  CodecCircuit t0 = BuildT0Encoder(width, 4, 0.1);
  CodecCircuit dual = BuildDualT0BIEncoder(width, 4, 0.1);
  GateSimulator t0_sim(t0.netlist);
  GateSimulator dual_sim(dual.netlist);
  const auto stream = MixedStream(width, 2000);
  for (const BusAccess& access : stream) {
    t0_sim.Cycle(DriveInputs(t0, access.address, access.sel));
    dual_sim.Cycle(DriveInputs(dual, access.address, access.sel));
  }
  // Use the glitch-aware model the Table 8/9 benches use: the deep
  // Hamming/majority logic is where the dual encoder pays.
  const double t0_mw =
      EstimatePower(t0.netlist, t0_sim, kClockHz, kVddVolts,
                    kDefaultGlitchPerLevel)
          .total_mw;
  const double dual_mw =
      EstimatePower(dual.netlist, dual_sim, kClockHz, kVddVolts,
                    kDefaultGlitchPerLevel)
          .total_mw;
  EXPECT_GT(dual_mw, 2.0 * t0_mw);
}

TEST(GateCodecTest, PrefixAdderVariantsAreEquivalent) {
  const unsigned width = 16;
  T0Codec t0_ref(width, 4);
  CheckEquivalence(t0_ref,
                   BuildT0Encoder(width, 4, 0.2, AdderStyle::kPrefix),
                   BuildT0Decoder(width, 4, 0.2, AdderStyle::kPrefix),
                   MixedStream(width, 500));
  DualT0BICodec dual_ref(width, 4);
  CheckEquivalence(dual_ref,
                   BuildDualT0BIEncoder(width, 4, 0.2, AdderStyle::kPrefix),
                   BuildDualT0BIDecoder(width, 4, 0.2, AdderStyle::kPrefix),
                   MixedStream(width, 500));
}

TEST(GateCodecTest, PrefixAdderIsFasterAndBigger) {
  const CodecCircuit ripple =
      BuildT0Encoder(32, 4, 0.2, AdderStyle::kRipple);
  const CodecCircuit prefix =
      BuildT0Encoder(32, 4, 0.2, AdderStyle::kPrefix);
  EXPECT_GT(prefix.netlist.gate_count(), ripple.netlist.gate_count());
  EXPECT_LT(AnalyzeTiming(prefix.netlist).critical_path_ns,
            AnalyzeTiming(ripple.netlist).critical_path_ns);
}

TEST(GateCodecTest, GateCountsAreSane) {
  const CodecCircuit t0 = BuildT0Encoder(32, 4, 0.1);
  const CodecCircuit dual = BuildDualT0BIEncoder(32, 4, 0.1);
  EXPECT_GT(t0.netlist.gate_count(), 32u);
  EXPECT_GT(dual.netlist.gate_count(), t0.netlist.gate_count());
  EXPECT_EQ(t0.netlist.flop_count(), 32u + 32u + 1u);
}

}  // namespace
}  // namespace abenc::gate
