#include "net/client.h"

#include <sys/socket.h>

#include <utility>

namespace abenc::net {

Client::Client(ClientOptions options) {
  const Endpoint endpoint = ParseEndpoint(options.endpoint);
  fd_ = DialEndpoint(endpoint, options.io_timeout);
  try {
    HelloRequest hello;
    const Frame reply = Transact(FrameType::kHello, EncodeHello(hello),
                                 FrameType::kHelloOk);
    max_frame_bytes_ = DecodeHelloOk(reply.payload).max_frame_bytes;
  } catch (...) {
    Abort();
    throw;
  }
}

Client::~Client() { Abort(); }

OpenReply Client::Open(const OpenRequest& request) {
  const Frame reply =
      Transact(FrameType::kOpen, EncodeOpen(request), FrameType::kOpenOk);
  return DecodeOpenOk(reply.payload);
}

AttachReply Client::Attach(std::uint64_t session_id, std::uint64_t token) {
  AttachRequest request;
  request.session_id = session_id;
  request.token = token;
  const Frame reply = Transact(FrameType::kAttach, EncodeAttach(request),
                               FrameType::kAttachOk);
  return DecodeAttachOk(reply.payload);
}

SubmitAck Client::Submit(std::uint64_t session_id,
                         std::span<const BusAccess> batch) {
  const Frame reply = Transact(FrameType::kSubmit,
                               EncodeSubmit(session_id, batch),
                               FrameType::kSubmitAck);
  return DecodeSubmitAck(reply.payload);
}

StatsReply Client::DrainStats(std::uint64_t session_id, bool wait_drained) {
  DrainStatsRequest request;
  request.session_id = session_id;
  request.wait_drained = wait_drained;
  const Frame reply = Transact(FrameType::kDrainStats,
                               EncodeDrainStats(request), FrameType::kStats);
  return DecodeStats(reply.payload);
}

CloseReply Client::Close(std::uint64_t session_id) {
  CloseRequest request;
  request.session_id = session_id;
  const Frame reply = Transact(FrameType::kClose, EncodeClose(request),
                               FrameType::kCloseOk);
  return DecodeCloseOk(reply.payload);
}

void Client::SendRaw(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw NetError("Client: socket already closed");
  SendAll(fd_, bytes.data(), bytes.size());
}

Frame Client::ReadFrame() {
  if (fd_ < 0) throw NetError("Client: socket already closed");
  for (;;) {
    std::optional<Frame> frame =
        TryExtractFrame(in_, static_cast<std::size_t>(max_frame_bytes_));
    if (frame.has_value()) return std::move(*frame);
    std::uint8_t chunk[65536];
    const std::size_t n = RecvSome(fd_, chunk, sizeof(chunk));
    if (n == 0) throw NetError("connection closed by server");
    in_.insert(in_.end(), chunk, chunk + n);
  }
}

void Client::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Abort() {
  CloseFd(fd_);
  fd_ = -1;
}

Frame Client::Transact(FrameType type,
                       std::span<const std::uint8_t> payload,
                       FrameType expected) {
  const std::vector<std::uint8_t> bytes = EncodeFrame(type, payload);
  SendRaw(bytes);
  Frame reply = ReadFrame();
  if (reply.type == FrameType::kError) {
    const ErrorReply error = DecodeError(reply.payload);
    throw WireError(error.status, error.message);
  }
  if (reply.type != expected) {
    throw WireError(Status::kBadFrame,
                    "expected " + FrameTypeName(expected) + ", got " +
                        FrameTypeName(reply.type));
  }
  return reply;
}

}  // namespace abenc::net
