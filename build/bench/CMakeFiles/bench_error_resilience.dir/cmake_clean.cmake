file(REMOVE_RECURSE
  "CMakeFiles/bench_error_resilience.dir/bench_error_resilience.cpp.o"
  "CMakeFiles/bench_error_resilience.dir/bench_error_resilience.cpp.o.d"
  "bench_error_resilience"
  "bench_error_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
