# Empty dependencies file for abenc_report.
# This may be replaced when dependencies are built.
