#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace abenc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("a table needs at least one column");
  }
}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row has " + std::to_string(cells.size()) +
                                " cells, table has " +
                                std::to_string(headers_.size()) + " columns");
  }
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

std::string TextTable::ToString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }
  const auto emit_rule = [&](std::ostream& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) out << '+';
    }
    out << '\n';
  };
  const auto emit_row = [&](std::ostream& out,
                            const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(width[c]))
          << cells[c] << ' ';
      if (c + 1 < cells.size()) out << '|';
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, headers_);
  emit_rule(out);
  for (const Row& row : rows_) {
    if (row.rule_before) emit_rule(out);
    emit_row(out, row.cells);
  }
  return out.str();
}

std::string FormatFixed(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string FormatPercent(double value) {
  // NaN is the signalled "no meaningful percentage" sentinel (e.g.
  // SavingsPercent against a zero reference); print it as such rather
  // than the locale-dependent "nan%".
  if (std::isnan(value)) return "n/a";
  return FormatFixed(value, 2) + "%";
}

std::string FormatCount(long long value) { return std::to_string(value); }

}  // namespace abenc
