// A shard of the encoding service: the unit of parallelism and of
// failure containment. Each shard owns a set of sessions and drains them
// round-robin, one bounded batch per session per Step(); a driver task
// on the service's thread pool calls Step() in a loop.
//
// Robustness hooks:
//  - a heartbeat counter advances at the end of every Step(), so the
//    service watchdog can tell a wedged shard (heartbeat frozen while
//    sessions have queued work) from an idle one;
//  - MarkDead() fences a failed-over shard: a zombie Step() that resumes
//    after failover observes the flag and exits without touching the
//    sessions, which by then belong to another shard (session drains are
//    additionally serialized by each session's own drain mutex, so even
//    the fence race is safe);
//  - TakeAll() migrates the sessions out for failover;
//  - a stall hook injects the "stuck shard" fault itself — the soak
//    harness and tests wedge a shard on purpose to prove the watchdog
//    path end to end.
//
// Step() also applies the eviction policy after draining each session:
// idle sessions (no work for `idle_evict_steps` consecutive steps) and
// over-budget sessions are evicted — bounded state, deterministic
// teardown (see session.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "service/session.h"

namespace abenc::service {

class Shard {
 public:
  struct Policy {
    std::size_t drain_batch = 256;       // accesses per session per step
    std::uint64_t idle_evict_steps = 0;  // 0 = never idle-evict
  };

  Shard(unsigned index, Policy policy, const ServiceMetrics* metrics)
      : index_(index), policy_(policy), metrics_(metrics) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  unsigned index() const { return index_; }

  void Add(std::shared_ptr<Session> session);

  /// Remove and return every session (watchdog failover).
  std::vector<std::shared_ptr<Session>> TakeAll();

  /// One drain pass over all owned sessions; returns whether any access
  /// was processed. No-op once dead.
  bool Step();

  /// Advances at the end of every completed Step().
  std::uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_acquire);
  }

  /// Total accesses queued across owned sessions (approximate — sampled
  /// without stopping the world; the watchdog only needs "is there
  /// work").
  std::size_t pending() const;

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  void MarkDead() { dead_.store(true, std::memory_order_release); }

  /// Fault-injection hook, fired at the start of every Step(); install
  /// before traffic starts. A hook that blocks models a wedged shard.
  void SetStallHook(std::function<void()> hook);

 private:
  const unsigned index_;
  const Policy policy_;
  const ServiceMetrics* metrics_;

  mutable std::mutex mutex_;  // guards sessions_ and stall_hook_
  std::vector<std::shared_ptr<Session>> sessions_;
  std::function<void()> stall_hook_;

  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> dead_{false};
};

}  // namespace abenc::service
