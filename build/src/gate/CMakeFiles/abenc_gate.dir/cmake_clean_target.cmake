file(REMOVE_RECURSE
  "libabenc_gate.a"
)
