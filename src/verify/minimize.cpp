#include "verify/minimize.h"

namespace abenc::verify {

std::vector<BusAccess> MinimizeStream(std::vector<BusAccess> stream,
                                      const FailingPredicate& still_fails,
                                      std::size_t max_probes) {
  std::size_t probes = 0;
  const auto try_candidate = [&](const std::vector<BusAccess>& candidate) {
    if (probes >= max_probes) return false;
    ++probes;
    return still_fails(candidate);
  };

  // Chunk removal with shrinking granularity (ddmin). A successful
  // removal restarts at the same chunk size; exhausting every chunk
  // halves it, down to single accesses.
  for (std::size_t chunk = stream.size() / 2; chunk >= 1;) {
    bool removed_any = false;
    for (std::size_t begin = 0;
         begin < stream.size() && probes < max_probes;) {
      std::vector<BusAccess> candidate;
      candidate.reserve(stream.size());
      candidate.insert(candidate.end(), stream.begin(),
                       stream.begin() + static_cast<std::ptrdiff_t>(begin));
      const std::size_t end =
          begin + chunk < stream.size() ? begin + chunk : stream.size();
      candidate.insert(candidate.end(),
                       stream.begin() + static_cast<std::ptrdiff_t>(end),
                       stream.end());
      if (!candidate.empty() && try_candidate(candidate)) {
        stream = std::move(candidate);
        removed_any = true;
        // Keep `begin` where it is: the next chunk slid into place.
      } else {
        begin += chunk;
      }
    }
    if (probes >= max_probes) break;
    if (!removed_any) {
      if (chunk == 1) break;
      chunk /= 2;
    } else if (chunk > stream.size() / 2 && stream.size() > 1) {
      chunk = stream.size() / 2;
    }
  }
  return stream;
}

}  // namespace abenc::verify
