# Empty compiler generated dependencies file for mips_trace_power.
# This may be replaced when dependencies are built.
