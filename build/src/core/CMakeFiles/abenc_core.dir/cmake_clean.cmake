file(REMOVE_RECURSE
  "CMakeFiles/abenc_core.dir/codec_factory.cpp.o"
  "CMakeFiles/abenc_core.dir/codec_factory.cpp.o.d"
  "CMakeFiles/abenc_core.dir/coupling.cpp.o"
  "CMakeFiles/abenc_core.dir/coupling.cpp.o.d"
  "CMakeFiles/abenc_core.dir/experiment.cpp.o"
  "CMakeFiles/abenc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/abenc_core.dir/resilience.cpp.o"
  "CMakeFiles/abenc_core.dir/resilience.cpp.o.d"
  "CMakeFiles/abenc_core.dir/stream_evaluator.cpp.o"
  "CMakeFiles/abenc_core.dir/stream_evaluator.cpp.o.d"
  "libabenc_core.a"
  "libabenc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abenc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
