// Per-session codec renegotiation, end to end: the pinned-switch
// contract at the session layer (apply exactly at the admitted index,
// total refusals across the whole recovery ladder), the server-side
// recommendation policy, and the wire path — versioned capability
// negotiation, RENEGOTIATE/ACK, pipelined SUBMIT_STREAM with its offset
// guard, and ATTACH resume landing exactly on a renegotiation /
// adaptive-window boundary (the resumed session must replay the same
// decision log as an uninterrupted one).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "channel/fault_models.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/sockets.h"
#include "service/renegotiation.h"
#include "service/service.h"
#include "verify/stream_gen.h"

namespace abenc::net {
namespace {

using service::Admission;
using service::EncodingService;
using service::RenegotiateOutcome;
using service::RenegotiateStatus;
using service::RenegotiationPolicy;
using service::ServiceConfig;
using service::SessionConfig;
using service::SessionReport;

std::vector<BusAccess> TestStream(std::size_t length,
                                  std::uint64_t seed = 1) {
  return verify::GenerateStream(verify::AllStreamFamilies()[0],
                                verify::MixSeed(seed), length, 32, 4);
}

/// A service in deterministic manual mode: no pool, no watchdog; the
/// test drives processing itself via Drain().
ServiceConfig ManualMode() {
  ServiceConfig config;
  config.shards = 1;
  config.start_drivers = false;
  config.enable_watchdog = false;
  return config;
}

void SubmitAll(EncodingService& service, std::uint64_t id,
               std::span<const BusAccess> stream,
               std::size_t chunk = 128) {
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    const Admission admission =
        service.Submit(id, stream.subspan(offset, n));
    if (admission == Admission::kRejected) {
      service.StepAll();
      continue;
    }
    ASSERT_TRUE(admission == Admission::kAccepted ||
                admission == Admission::kSlowDown);
    offset += n;
  }
}

void ExpectSameEvalResult(const EvalResult& got, const EvalResult& want) {
  EXPECT_EQ(got.stream_length, want.stream_length);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.peak_transitions, want.peak_transitions);
  EXPECT_EQ(got.in_sequence_percent, want.in_sequence_percent);
  EXPECT_EQ(got.per_line, want.per_line);
}

// ---- session layer ---------------------------------------------------

TEST(RenegotiationSessionTest, ScheduledSwitchAppliesExactlyAtPinnedIndex) {
  // Queue 100 accesses, renegotiate while they are still queued: the
  // switch must pin to the lifetime admitted count (100), apply there
  // during the drain, and the lifetime accounting must equal a serial
  // EvaluateWithSchedule replay of that one switch point.
  const std::vector<BusAccess> stream = TestStream(300, 21);
  EncodingService service(ManualMode());
  SessionConfig config;
  config.codec_name = "t0";
  const std::uint64_t id = service.OpenSession(config);
  const std::span<const BusAccess> span(stream);

  ASSERT_EQ(service.Submit(id, span.subspan(0, 100)), Admission::kAccepted);
  const RenegotiateOutcome outcome = service.Renegotiate(id, "gray");
  EXPECT_EQ(outcome.status, RenegotiateStatus::kScheduled);
  EXPECT_EQ(outcome.switch_index, 100u);

  SubmitAll(service, id, span.subspan(100));
  service.CloseSession(id);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  const SessionReport report = service.Report(id);
  ASSERT_EQ(report.renegotiations.size(), 1u);
  EXPECT_EQ(report.renegotiations[0].index, 100u);
  EXPECT_EQ(report.renegotiations[0].codec_name, "gray");
  EXPECT_EQ(report.active_codec, "gray");
  ExpectSameEvalResult(
      report.result,
      EvaluateWithSchedule("t0", config.codec_options, stream,
                           report.renegotiations, report.reset_points));
}

TEST(RenegotiationSessionTest, DrainedQueueAppliesImmediately) {
  const std::vector<BusAccess> stream = TestStream(200, 22);
  EncodingService service(ManualMode());
  SessionConfig config;
  config.codec_name = "gray";
  const std::uint64_t id = service.OpenSession(config);
  const std::span<const BusAccess> span(stream);

  SubmitAll(service, id, span.subspan(0, 80));
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));
  const RenegotiateOutcome outcome = service.Renegotiate(id, "bus-invert");
  EXPECT_EQ(outcome.status, RenegotiateStatus::kApplied);
  EXPECT_EQ(outcome.switch_index, 80u);

  SubmitAll(service, id, span.subspan(80));
  service.CloseSession(id);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  const SessionReport report = service.Report(id);
  ASSERT_EQ(report.renegotiations.size(), 1u);
  EXPECT_EQ(report.renegotiations[0].index, 80u);
  // bus-invert adds a redundant line: the fold must zero-extend the
  // narrower t0-era histogram, which EvaluateWithSchedule mirrors.
  ExpectSameEvalResult(
      report.result,
      EvaluateWithSchedule("gray", config.codec_options, stream,
                           report.renegotiations, report.reset_points));
}

TEST(RenegotiationSessionTest, EndOfStreamPinnedSwitchStillApplies) {
  // Regression pin: a switch scheduled while the final batch is still
  // queued lands exactly at the end of the processed stream — there is
  // never another access to trigger the split, so the drain itself must
  // apply it, or an acked switch stays pending forever and the replayed
  // schedule diverges from the acks.
  const std::vector<BusAccess> stream = TestStream(150, 23);
  EncodingService service(ManualMode());
  SessionConfig config;
  config.codec_name = "t0";
  const std::uint64_t id = service.OpenSession(config);

  ASSERT_EQ(service.Submit(id, stream), Admission::kAccepted);
  const RenegotiateOutcome outcome = service.Renegotiate(id, "gray");
  EXPECT_EQ(outcome.status, RenegotiateStatus::kScheduled);
  EXPECT_EQ(outcome.switch_index, stream.size());

  service.CloseSession(id);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  const SessionReport report = service.Report(id);
  ASSERT_EQ(report.renegotiations.size(), 1u);
  EXPECT_EQ(report.renegotiations[0].index, stream.size());
  EXPECT_EQ(report.active_codec, "gray");
  ExpectSameEvalResult(
      report.result,
      EvaluateWithSchedule("t0", config.codec_options, stream,
                           report.renegotiations, report.reset_points));
}

TEST(RenegotiationSessionTest, RefusalsAreTotalAcrossTheLadder) {
  // kRefusedBadCodec / kRefusedPending / kRefusedUnchanged /
  // kRefusedClosed: each refusal leaves the session bit-for-bit
  // unchanged — no half-applied switch may ever reach the schedule.
  const std::vector<BusAccess> stream = TestStream(120, 24);
  EncodingService service(ManualMode());
  const std::uint64_t id = service.OpenSession();
  const std::string active = service.Report(id).active_codec;

  EXPECT_EQ(service.Renegotiate(id, "no-such-codec").status,
            RenegotiateStatus::kRefusedBadCodec);
  EXPECT_EQ(service.Renegotiate(id, active).status,
            RenegotiateStatus::kRefusedUnchanged);

  ASSERT_EQ(service.Submit(id, stream), Admission::kAccepted);
  EXPECT_EQ(service.Renegotiate(id, "gray").status,
            RenegotiateStatus::kScheduled);
  EXPECT_EQ(service.Renegotiate(id, "bus-invert").status,
            RenegotiateStatus::kRefusedPending);

  service.CloseSession(id);
  EXPECT_EQ(service.Renegotiate(id, "bus-invert").status,
            RenegotiateStatus::kRefusedClosed);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  // Only the one scheduled switch applied; the refused ones left no
  // trace, and the replayed schedule matches.
  const SessionReport report = service.Report(id);
  ASSERT_EQ(report.renegotiations.size(), 1u);
  EXPECT_EQ(report.renegotiations[0].codec_name, "gray");
  ExpectSameEvalResult(
      report.result,
      EvaluateWithSchedule(active, CodecOptions{}, stream,
                           report.renegotiations, report.reset_points));
}

TEST(RenegotiationSessionTest, RefusedAfterDegradeToBinary) {
  // Rung 3 of the recovery ladder: once the transport has degraded the
  // session sticks to binary — a renegotiation would silently re-arm a
  // history codec on a broken channel, so it must be refused.
  EncodingService service(ManualMode());
  SessionConfig config;
  config.codec_name = "t0";
  config.protection = Protection::kNone;
  config.fault_installer = [](BusChannel& channel) {
    channel.AddFault(std::make_unique<StuckAtFault>(0, true, 30));
  };
  const std::uint64_t id = service.OpenSession(config);
  const std::vector<BusAccess> stream = TestStream(200, 25);
  SubmitAll(service, id, stream);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  const SessionReport before = service.Report(id);
  ASSERT_TRUE(before.degraded);
  EXPECT_EQ(service.Renegotiate(id, "gray").status,
            RenegotiateStatus::kRefusedDegraded);

  const SessionReport after = service.Report(id);
  EXPECT_TRUE(after.renegotiations.empty());
  EXPECT_EQ(after.active_codec, before.active_codec);
  const service::TransportCounters& t = after.transport;
  EXPECT_EQ(t.clean + t.corrected + t.recovered + t.degraded_deliveries,
            t.transfers);
}

TEST(RenegotiationSessionTest, RefusedMidRecoveryWhileChannelInFallback) {
  // Rung 2, mid-resync: repeated detected upsets push the channel's own
  // recovery FSM into fallback mode (without degrading the session).
  // While the FSM owns the transport a renegotiation must be deferred —
  // tearing down the codec mid-recovery would half-apply the ladder.
  EncodingService service(ManualMode());
  SessionConfig config;
  config.codec_name = "t0";
  config.protection = Protection::kParity;
  config.channel_recovery = true;
  config.fault_installer = [](BusChannel& channel) {
    // Four detected-error cycles inside the 64-cycle sliding window:
    // past the fallback threshold of 3 even with retry cycles between.
    channel.AddFault(std::make_unique<SingleUpsetFault>(10, 3));
    channel.AddFault(std::make_unique<SingleUpsetFault>(14, 5));
    channel.AddFault(std::make_unique<SingleUpsetFault>(18, 7));
    channel.AddFault(std::make_unique<SingleUpsetFault>(22, 9));
  };
  const std::uint64_t id = service.OpenSession(config);
  const std::vector<BusAccess> stream = TestStream(60, 26);
  SubmitAll(service, id, stream);
  ASSERT_TRUE(service.Drain(std::chrono::milliseconds(5000)));

  const SessionReport report = service.Report(id);
  ASSERT_FALSE(report.degraded);  // healed, not degraded
  EXPECT_GE(report.transport.recovered, 1u);
  // The clean run since the last upset is far below the promote window,
  // so the channel is still in fallback — the refusal the ladder owes.
  EXPECT_EQ(service.Renegotiate(id, "gray").status,
            RenegotiateStatus::kRefusedRecovering);
  EXPECT_TRUE(service.Report(id).renegotiations.empty());
}

// ---- recommendation policy -------------------------------------------

TEST(RenegotiationPolicyTest, RegimesMapToPaletteMembers) {
  const RenegotiationPolicy policy;
  AdaptiveWindowStats window;

  // Too little signal: no recommendation.
  window.accesses = 8;
  EXPECT_EQ(policy.Recommend(window, 32, "binary"), "");

  // Sequential regime -> t0.
  window.accesses = 64;
  window.in_sequence = 60;
  window.sel_high = 64;
  EXPECT_EQ(policy.Recommend(window, 32, "binary"), "t0");
  // ...but never a switch to the codec already active.
  EXPECT_EQ(policy.Recommend(window, 32, "t0"), "");

  // Sequential and genuinely multiplexed -> the dual code.
  window.sel_high = 32;
  EXPECT_EQ(policy.Recommend(window, 32, "binary"), "dual-t0-bi");

  // Random-like dense toggling -> bus-invert.
  AdaptiveWindowStats dense;
  dense.accesses = 64;
  dense.raw_toggles = 64 * 16;  // density 16 > 32 * 0.25
  EXPECT_EQ(policy.Recommend(dense, 32, "t0"), "bus-invert");

  // Unit-stride counting -> gray.
  AdaptiveWindowStats unit;
  unit.accesses = 64;
  unit.stride_histogram[1] = 40;  // >= 0.5 * (accesses - 1)
  EXPECT_EQ(policy.Recommend(unit, 32, "t0"), "gray");

  EXPECT_TRUE(policy.InPalette("gray"));
  EXPECT_FALSE(policy.InPalette("adaptive"));
}

// ---- wire layer ------------------------------------------------------

ServerConfig LoopbackConfig() {
  ServerConfig config;
  config.endpoint = "tcp:127.0.0.1:0";
  config.service.shards = 2;
  config.service.parallelism = 2;
  return config;
}

ClientOptions OptionsFor(const Server& server) {
  ClientOptions options;
  options.endpoint = server.endpoint();
  options.io_timeout = std::chrono::milliseconds(20000);
  return options;
}

/// Raw (Client-free) connection for frame-level violation cases.
struct RawConn {
  int fd = -1;
  std::vector<std::uint8_t> buffer;

  explicit RawConn(const std::string& endpoint)
      : fd(DialEndpoint(ParseEndpoint(endpoint),
                        std::chrono::milliseconds(10000))) {}
  ~RawConn() { CloseFd(fd); }

  void Send(std::span<const std::uint8_t> bytes) {
    SendAll(fd, bytes.data(), bytes.size());
  }

  std::optional<Frame> Read() {
    for (;;) {
      std::optional<Frame> frame =
          TryExtractFrame(buffer, kDefaultMaxFrameBytes);
      if (frame.has_value()) return frame;
      std::uint8_t chunk[4096];
      const std::size_t n = RecvSome(fd, chunk, sizeof(chunk));
      if (n == 0) return std::nullopt;
      buffer.insert(buffer.end(), chunk, chunk + n);
    }
  }
};

void SubmitOverWire(Client& client, std::uint64_t session_id,
                    std::span<const BusAccess> stream, std::size_t from,
                    std::size_t to) {
  std::size_t submitted = from;
  while (submitted < to) {
    const std::size_t n = std::min<std::size_t>(64, to - submitted);
    const SubmitAck ack =
        client.Submit(session_id, stream.subspan(submitted, n));
    if (ack.status != Status::kRejected) submitted += n;
  }
}

TEST(RenegotiationWireTest, VersionAndCapabilityNegotiation) {
  Server server(LoopbackConfig());
  server.Start();

  Client v2(OptionsFor(server));
  EXPECT_EQ(v2.version(), kProtocolVersion);
  EXPECT_EQ(v2.capabilities(), kDefaultCapabilities);

  ClientOptions old_options = OptionsFor(server);
  old_options.version_max = 1;
  Client v1(old_options);
  EXPECT_EQ(v1.version(), 1);
  EXPECT_EQ(v1.capabilities(), 0u);

  // A v2 handshake that did not offer the capabilities gets none.
  ClientOptions bare_options = OptionsFor(server);
  bare_options.capabilities = 0;
  Client bare(bare_options);
  EXPECT_EQ(bare.version(), kProtocolVersion);
  EXPECT_EQ(bare.capabilities(), 0u);
  server.Stop();
}

TEST(RenegotiationWireTest, MidStreamSwitchRoundTripsAndVerifies) {
  Server server(LoopbackConfig());
  server.Start();
  Client client(OptionsFor(server));

  const std::vector<BusAccess> stream = TestStream(400, 31);
  OpenRequest open;
  open.codec = "t0";
  const OpenReply opened = client.Open(open);

  SubmitOverWire(client, opened.session_id, stream, 0, 150);
  (void)client.DrainStats(opened.session_id, /*wait_drained=*/true);
  const RenegotiateReply ack =
      client.Renegotiate(opened.session_id, "bus-invert");
  EXPECT_EQ(ack.session_id, opened.session_id);
  EXPECT_EQ(ack.codec, "bus-invert");
  EXPECT_EQ(ack.switch_index, 150u);

  SubmitOverWire(client, opened.session_id, stream, 150, stream.size());
  const StatsReply stats =
      client.DrainStats(opened.session_id, /*wait_drained=*/true);
  ASSERT_EQ(stats.renegotiations.size(), 1u);
  EXPECT_EQ(stats.renegotiations[0].index, 150u);
  EXPECT_EQ(stats.renegotiations[0].codec_name, "bus-invert");
  EXPECT_EQ(stats.active_codec, "bus-invert");

  const std::vector<std::size_t> resets(stats.reset_points.begin(),
                                        stats.reset_points.end());
  const EvalResult expected = EvaluateWithSchedule(
      "t0", CodecOptions{}, stream, stats.renegotiations, resets);
  EXPECT_EQ(stats.transitions, expected.transitions);
  EXPECT_EQ(stats.peak_transitions, expected.peak_transitions);
  EXPECT_EQ(stats.in_sequence_percent, expected.in_sequence_percent);
  ASSERT_EQ(stats.per_line.size(), expected.per_line.size());
  for (std::size_t i = 0; i < stats.per_line.size(); ++i) {
    EXPECT_EQ(stats.per_line[i], expected.per_line[i]) << "line " << i;
  }
  client.Close(opened.session_id);
  server.Stop();
}

TEST(RenegotiationWireTest, AttachResumeOnRenegotiationBoundary) {
  // The resume/boundary collision the bug sweep targets: the connection
  // dies immediately after a switch pinned exactly at the stats-window
  // boundary (64 = the default AdaptiveWindowStats window). The resumed
  // session must replay the same decision log as an uninterrupted twin
  // — ATTACH_OK reports the applied switch, and the final accounting of
  // both sessions is identical bit for bit.
  Server server(LoopbackConfig());
  server.Start();
  const std::vector<BusAccess> stream = TestStream(300, 32);

  OpenRequest open;
  open.codec = "t0";

  // Interrupted session: switch at 64, then drop the connection.
  std::uint64_t interrupted_id = 0;
  std::uint64_t token = 0;
  {
    Client first(OptionsFor(server));
    const OpenReply opened = first.Open(open);
    interrupted_id = opened.session_id;
    token = opened.token;
    SubmitOverWire(first, interrupted_id, stream, 0, 64);
    (void)first.DrainStats(interrupted_id, /*wait_drained=*/true);
    const RenegotiateReply ack = first.Renegotiate(interrupted_id, "gray");
    EXPECT_EQ(ack.switch_index, 64u);
    // Destructor closes the socket without CLOSE: a mid-session death.
  }

  Client resumed(OptionsFor(server));
  const AttachReply attach = resumed.Attach(interrupted_id, token);
  EXPECT_EQ(attach.accepted, 64u);
  EXPECT_EQ(attach.renegotiations, 1u);
  EXPECT_EQ(attach.active_codec, "gray");
  SubmitOverWire(resumed, interrupted_id, stream, attach.accepted,
                 stream.size());
  const StatsReply got =
      resumed.DrainStats(interrupted_id, /*wait_drained=*/true);
  resumed.Close(interrupted_id);

  // Uninterrupted twin: same stream, same switch point.
  Client twin(OptionsFor(server));
  const OpenReply twin_open = twin.Open(open);
  SubmitOverWire(twin, twin_open.session_id, stream, 0, 64);
  (void)twin.DrainStats(twin_open.session_id, /*wait_drained=*/true);
  EXPECT_EQ(twin.Renegotiate(twin_open.session_id, "gray").switch_index,
            64u);
  SubmitOverWire(twin, twin_open.session_id, stream, 64, stream.size());
  const StatsReply want =
      twin.DrainStats(twin_open.session_id, /*wait_drained=*/true);
  twin.Close(twin_open.session_id);

  EXPECT_EQ(got.stream_length, want.stream_length);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.peak_transitions, want.peak_transitions);
  EXPECT_EQ(got.in_sequence_percent, want.in_sequence_percent);
  EXPECT_EQ(got.per_line, want.per_line);
  EXPECT_EQ(got.renegotiations, want.renegotiations);
  EXPECT_EQ(got.reset_points, want.reset_points);
  EXPECT_EQ(got.active_codec, want.active_codec);
  server.Stop();
}

TEST(RenegotiationWireTest, PipelinedSubmitStreamMatchesSerialOracle) {
  Server server(LoopbackConfig());
  server.Start();
  Client client(OptionsFor(server));

  const std::vector<BusAccess> stream = TestStream(700, 33);
  std::vector<Word> addresses(stream.size());
  std::vector<std::uint8_t> sel(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    addresses[i] = stream[i].address;
    sel[i] = stream[i].sel ? 1 : 0;
  }

  OpenRequest open;
  open.codec = "gray";
  const OpenReply opened = client.Open(open);
  StreamSubmitOptions submit;
  submit.chunk = 48;
  submit.window = 4;
  submit.ack_interval = 3;  // sparse acks: the streaming mode
  const StreamSubmitResult result =
      client.SubmitColumns(opened.session_id, addresses.data(), sel.data(),
                           stream.size(), submit);
  EXPECT_FALSE(result.closed);
  EXPECT_EQ(result.accepted, stream.size());

  const StatsReply stats =
      client.DrainStats(opened.session_id, /*wait_drained=*/true);
  EXPECT_EQ(stats.stream_length, stream.size());
  const std::vector<std::size_t> resets(stats.reset_points.begin(),
                                        stats.reset_points.end());
  const EvalResult expected = EvaluateWithSchedule(
      "gray", CodecOptions{}, stream, stats.renegotiations, resets);
  EXPECT_EQ(stats.transitions, expected.transitions);
  EXPECT_EQ(stats.per_line, expected.per_line);
  client.Close(opened.session_id);
  server.Stop();
}

TEST(RenegotiationWireTest, SubmitStreamOffsetGuardRejectsStaleOffset) {
  // The pipelining offset guard: a SUBMIT_STREAM whose offset is not
  // the server's lifetime admitted count queues nothing and is answered
  // kRejected carrying the server's truth — even with want_ack unset.
  Server server(LoopbackConfig());
  server.Start();
  RawConn conn(server.endpoint());
  conn.Send(EncodeFrame(FrameType::kHello, EncodeHello(HelloRequest{})));
  const HelloReply hello = DecodeHelloOk(conn.Read()->payload);
  ASSERT_EQ(hello.version, kProtocolVersion);
  conn.Send(EncodeFrame(FrameType::kOpen, EncodeOpen(OpenRequest{})));
  const OpenReply opened = DecodeOpenOk(conn.Read()->payload);

  const std::vector<BusAccess> stream = TestStream(8, 34);
  std::vector<Word> addresses;
  std::vector<std::uint8_t> sel;
  for (const BusAccess& access : stream) {
    addresses.push_back(access.address);
    sel.push_back(access.sel ? 1 : 0);
  }
  // Stale offset 5 (server has admitted 0), want_ack = 0.
  conn.Send(EncodeFrame(
      FrameType::kSubmitStream,
      EncodeSubmitStream(opened.session_id, 5, false, addresses.data(),
                         sel.data(), addresses.size())));
  std::optional<Frame> frame = conn.Read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kSubmitAck);
  SubmitAck ack = DecodeSubmitAck(frame->payload, hello.capabilities);
  EXPECT_EQ(ack.status, Status::kRejected);
  EXPECT_EQ(ack.accepted, 0u);

  // The correct offset goes through and nothing from the stale frame
  // was queued ahead of it.
  conn.Send(EncodeFrame(
      FrameType::kSubmitStream,
      EncodeSubmitStream(opened.session_id, 0, true, addresses.data(),
                         sel.data(), addresses.size())));
  frame = conn.Read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kSubmitAck);
  ack = DecodeSubmitAck(frame->payload, hello.capabilities);
  EXPECT_EQ(ack.status, Status::kOk);
  EXPECT_EQ(ack.accepted, stream.size());
  server.Stop();
}

TEST(RenegotiationWireTest, OldClientCompletesFullSessionUntouched) {
  // The acceptance bar for backwards compatibility: a client pinned to
  // protocol version 1 runs a complete session and its replies carry no
  // v2 extension bytes; the v2-only verbs are refused client-side.
  Server server(LoopbackConfig());
  server.Start();
  ClientOptions options = OptionsFor(server);
  options.version_max = 1;
  Client client(options);
  ASSERT_EQ(client.version(), 1);
  ASSERT_EQ(client.capabilities(), 0u);

  const std::vector<BusAccess> stream = TestStream(200, 35);
  OpenRequest open;
  open.codec = "t0";
  const OpenReply opened = client.Open(open);
  SubmitOverWire(client, opened.session_id, stream, 0, stream.size());
  const StatsReply stats =
      client.DrainStats(opened.session_id, /*wait_drained=*/true);
  EXPECT_EQ(stats.stream_length, stream.size());
  EXPECT_TRUE(stats.renegotiations.empty());
  EXPECT_TRUE(stats.active_codec.empty());

  CodecPtr reference = MakeCodec("t0", CodecOptions{});
  const std::vector<std::size_t> resets(stats.reset_points.begin(),
                                        stats.reset_points.end());
  const EvalResult expected = EvaluateWithResets(*reference, stream, resets);
  EXPECT_EQ(stats.transitions, expected.transitions);
  EXPECT_EQ(stats.per_line, expected.per_line);

  EXPECT_THROW(client.Renegotiate(opened.session_id, "gray"), WireError);
  Word address = 0;
  std::uint8_t sel = 1;
  EXPECT_THROW(client.SubmitColumns(opened.session_id, &address, &sel, 1,
                                    StreamSubmitOptions{}),
               WireError);
  client.Close(opened.session_id);
  server.Stop();
}

TEST(RenegotiationWireTest, CapabilityGatedFrameWithoutCapIsFatal) {
  // A v2 connection that negotiated no capabilities sending RENEGOTIATE
  // is a protocol violation: fatal ERROR, then close.
  Server server(LoopbackConfig());
  server.Start();
  RawConn conn(server.endpoint());
  HelloRequest hello;
  hello.capabilities = 0;
  conn.Send(EncodeFrame(FrameType::kHello, EncodeHello(hello)));
  const HelloReply negotiated = DecodeHelloOk(conn.Read()->payload);
  ASSERT_EQ(negotiated.version, kProtocolVersion);
  ASSERT_EQ(negotiated.capabilities, 0u);

  RenegotiateRequest request;
  request.session_id = 1;
  request.codec = "gray";
  conn.Send(EncodeFrame(FrameType::kRenegotiate,
                        EncodeRenegotiate(request)));
  std::optional<Frame> frame = conn.Read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kError);
  const ErrorReply error = DecodeError(frame->payload);
  EXPECT_TRUE(StatusIsFatal(error.status));
  EXPECT_FALSE(conn.Read().has_value());  // server closed the connection
  server.Stop();
}

TEST(RenegotiationWireTest, EmptyCodecAsksThePolicy) {
  // RENEGOTIATE with an empty codec delegates to the server policy; on
  // a brand-new session the policy has no completed window yet, so the
  // request is refused cleanly (request-scoped, connection stays up).
  Server server(LoopbackConfig());
  server.Start();
  Client client(OptionsFor(server));
  const OpenReply opened = client.Open(OpenRequest{});
  try {
    (void)client.Renegotiate(opened.session_id, "");
    FAIL() << "policy recommended a switch with zero completed windows";
  } catch (const WireError& e) {
    EXPECT_EQ(e.status(), Status::kRenegotiateRefused);
  }
  // The refusal was request-scoped: the session still works.
  const std::vector<BusAccess> stream = TestStream(64, 36);
  SubmitOverWire(client, opened.session_id, stream, 0, stream.size());
  const StatsReply stats =
      client.DrainStats(opened.session_id, /*wait_drained=*/true);
  EXPECT_EQ(stats.stream_length, stream.size());
  client.Close(opened.session_id);
  server.Stop();
}

}  // namespace
}  // namespace abenc::net
