#include "channel/upset.h"

#include <memory>
#include <random>
#include <stdexcept>

#include "channel/fault_models.h"

namespace abenc {

ChannelRunResult RunStream(BusChannel& channel,
                           std::span<const BusAccess> stream) {
  const Word mask = LowMask(channel.width());
  ChannelRunResult result;
  for (std::size_t t = 0; t < stream.size(); ++t) {
    const Word decoded = channel.Transfer(stream[t].address, stream[t].sel);
    if (decoded != (stream[t].address & mask)) {
      if (!result.any_corruption) result.first_mismatch = t;
      result.any_corruption = true;
      result.last_mismatch = t;
      ++result.corrupted_addresses;
    }
  }
  result.cycles = stream.size();
  result.counters = channel.counters();
  result.final_mode = channel.mode();
  result.wire_transitions = channel.wire_transitions();
  return result;
}

UpsetResult MeasureSingleUpset(const ChannelConfig& config,
                               std::span<const BusAccess> stream,
                               std::size_t cycle, unsigned line) {
  if (cycle >= stream.size()) {
    throw std::out_of_range("injection cycle beyond the stream");
  }
  BusChannel channel(config);
  if (line >= channel.total_lines()) {
    throw std::out_of_range("injection line beyond the coded bus");
  }
  channel.AddFault(std::make_unique<SingleUpsetFault>(cycle, line));

  const ChannelRunResult run = RunStream(channel, stream);
  UpsetResult result;
  result.corrupted_addresses = run.corrupted_addresses;
  const std::size_t last_mismatch =
      run.any_corruption ? run.last_mismatch : cycle;
  result.recovery_cycles = last_mismatch - cycle;
  result.resynchronised = last_mismatch + 1 < stream.size();
  return result;
}

double AverageUpsetCorruption(const ChannelConfig& config,
                              std::span<const BusAccess> stream,
                              std::size_t injections, std::uint64_t seed) {
  if (stream.empty() || injections == 0) return 0.0;
  const unsigned lines = BusChannel(config).total_lines();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick_cycle(0, stream.size() - 1);
  std::uniform_int_distribution<unsigned> pick_line(0, lines - 1);
  double total = 0.0;
  for (std::size_t i = 0; i < injections; ++i) {
    const std::size_t cycle = pick_cycle(rng);
    const unsigned line = pick_line(rng);
    total += static_cast<double>(
        MeasureSingleUpset(config, stream, cycle, line).corrupted_addresses);
  }
  return total / static_cast<double>(injections);
}

}  // namespace abenc
