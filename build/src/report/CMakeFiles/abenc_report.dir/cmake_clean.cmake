file(REMOVE_RECURSE
  "CMakeFiles/abenc_report.dir/table.cpp.o"
  "CMakeFiles/abenc_report.dir/table.cpp.o.d"
  "libabenc_report.a"
  "libabenc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abenc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
