// Core value types shared by every bus-encoding component.
//
// Terminology follows the paper (Benini et al., DATE 1998):
//   b(t)   - the address value produced by the processor at cycle t
//   B(t)   - the value driven on the N encoded bus lines at cycle t
//   INC/INV/INCV - redundant control lines added by the redundant codes
//   SEL    - the instruction/data select signal already present on a
//            multiplexed bus interface (asserted for instruction slots)
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>

// Debug-only precondition check for the bit-twiddling primitives below.
// They are constexpr and sit on per-word hot paths, so release builds
// (NDEBUG) compile the checks out entirely.
#define ABENC_ASSERT(condition) assert(condition)

namespace abenc {

/// An address or bus-line value. Buses up to 64 bits wide are supported.
using Word = std::uint64_t;

/// Bit mask covering the low `width` bits of a Word.
/// Precondition: width <= 64. `LowMask(0)` is the empty mask (0), used
/// by callers with no redundant lines or a zero shift; widths above 64
/// are a caller bug (asserted in debug builds, saturated in release).
constexpr Word LowMask(unsigned width) {
  ABENC_ASSERT(width <= 64 && "LowMask: width exceeds the 64-bit Word");
  return width >= 64 ? ~Word{0} : ((Word{1} << width) - 1);
}

/// Number of set bits.
constexpr int PopCount(Word w) { return std::popcount(w); }

/// Hamming distance between two words restricted to `width` lines.
constexpr int HammingDistance(Word a, Word b, unsigned width) {
  return std::popcount((a ^ b) & LowMask(width));
}

/// Standard reflected binary Gray code.
constexpr Word BinaryToGray(Word b) { return b ^ (b >> 1); }

/// Inverse of BinaryToGray.
constexpr Word GrayToBinary(Word g) {
  Word b = g;
  for (unsigned shift = 1; shift < 64; shift <<= 1) b ^= b >> shift;
  return b;
}

/// True iff `w` is a (nonzero) power of two.
constexpr bool IsPowerOfTwo(Word w) { return w != 0 && (w & (w - 1)) == 0; }

/// log2 of a power of two.
/// Precondition: `w` is a nonzero power of two. `Log2(0)` would quietly
/// return 64 (countr_zero of zero), which no caller can mean; asserted
/// in debug builds. Factory paths reject the width-0 configurations
/// that could reach here with CodecConfigError before any bit math.
constexpr unsigned Log2(Word w) {
  ABENC_ASSERT(IsPowerOfTwo(w) && "Log2: argument must be a power of two");
  return static_cast<unsigned>(std::countr_zero(w));
}

/// The physical state of the bus at one clock edge: N data lines plus up
/// to 64 redundant control lines (bit 0 = first redundant line, e.g. INC).
struct BusState {
  Word lines = 0;
  Word redundant = 0;

  friend bool operator==(const BusState&, const BusState&) = default;
};

/// One bus reference: an address plus the instruction/data select signal
/// (true for instruction slots; constant for dedicated buses).
struct BusAccess {
  Word address = 0;
  bool sel = true;

  friend bool operator==(const BusAccess&, const BusAccess&) = default;
};

/// Transitions (line toggles) between two consecutive bus states, counting
/// both the N data lines and the R redundant lines, as the paper does.
constexpr int TransitionsBetween(const BusState& prev, const BusState& next,
                                 unsigned width, unsigned redundant_lines) {
  return HammingDistance(prev.lines, next.lines, width) +
         (redundant_lines == 0 ? 0
                               : HammingDistance(prev.redundant,
                                                 next.redundant,
                                                 redundant_lines));
}

/// Thrown when a codec is constructed with invalid parameters
/// (e.g. a stride that is not a power of two).
class CodecConfigError : public std::invalid_argument {
 public:
  explicit CodecConfigError(const std::string& what)
      : std::invalid_argument(what) {}
};

}  // namespace abenc
