// Coupling-driven odd/even bus-invert — the DSM-era extension of the
// bus-invert idea (Zhang/Ye/Irwin style): when line-to-line capacitance
// dominates, inverting *alternate* lines can cancel opposite-direction
// neighbour switching that a whole-bus inversion cannot touch.
#pragma once

#include <array>

#include "core/codec.h"
#include "core/coupling.h"

namespace abenc {

/// Two redundant lines: INVE (redundant bit 0) inverts the even-indexed
/// data lines, INVO (bit 1) the odd-indexed ones. Each cycle the encoder
/// evaluates all four (INVE, INVO) candidates against the previous bus
/// state with the lambda-weighted self + coupling cost of
/// core/coupling.h and transmits the cheapest; decoding is the stateless
/// conditional inversion of the two masks.
class CoupleInvertCodec final : public Codec {
 public:
  explicit CoupleInvertCodec(unsigned width, double lambda = 2.0)
      : Codec(width), lambda_(lambda) {
    even_mask_ = Word{0x5555555555555555ull} & LowMask(width);
    odd_mask_ = Word{0xAAAAAAAAAAAAAAAAull} & LowMask(width);
  }

  std::string name() const override { return "couple-invert"; }
  std::string display_name() const override { return "OE-Invert"; }
  unsigned redundant_lines() const override { return 2; }

  BusState Encode(Word address, bool /*sel*/) override {
    const Word b = Mask(address);
    BusState best;
    double best_cost = 0.0;
    bool have_best = false;
    for (unsigned inve = 0; inve < 2; ++inve) {
      for (unsigned invo = 0; invo < 2; ++invo) {
        Word lines = b;
        if (inve) lines ^= even_mask_;
        if (invo) lines ^= odd_mask_;
        const BusState candidate{lines,
                                 static_cast<Word>(inve | (invo << 1))};
        const double cost = TransitionCost(prev_, candidate);
        if (!have_best || cost < best_cost) {
          best = candidate;
          best_cost = cost;
          have_best = true;
        }
      }
    }
    prev_ = best;
    return best;
  }

  Word Decode(const BusState& bus, bool /*sel*/) override {
    Word b = bus.lines;
    if (bus.redundant & 1) b ^= even_mask_;
    if (bus.redundant & 2) b ^= odd_mask_;
    return Mask(b);
  }

  void Reset() override { prev_ = BusState{}; }

  double lambda() const { return lambda_; }

 private:
  /// lambda-weighted self + coupling cost of moving the bus from `from`
  /// to `to`, over the physical chain (data lines then INVE, INVO).
  double TransitionCost(const BusState& from, const BusState& to) const {
    const unsigned total = width() + 2;
    int prev_delta = 0;
    bool have_prev = false;
    long long self = 0;
    long long coupling = 0;
    for (unsigned i = 0; i < total; ++i) {
      const int old_bit =
          i < width() ? static_cast<int>((from.lines >> i) & 1)
                      : static_cast<int>((from.redundant >> (i - width())) & 1);
      const int new_bit =
          i < width() ? static_cast<int>((to.lines >> i) & 1)
                      : static_cast<int>((to.redundant >> (i - width())) & 1);
      const int delta = new_bit - old_bit;
      if (delta != 0) ++self;
      if (have_prev && !(prev_delta == 0 && delta == 0) &&
          prev_delta != delta) {
        coupling += (prev_delta != 0 && delta != 0) ? 2 : 1;
      }
      prev_delta = delta;
      have_prev = true;
    }
    return static_cast<double>(self) +
           lambda_ * static_cast<double>(coupling);
  }

  double lambda_;
  Word even_mask_ = 0;
  Word odd_mask_ = 0;
  BusState prev_;
};

}  // namespace abenc
