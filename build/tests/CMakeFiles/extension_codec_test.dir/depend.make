# Empty dependencies file for extension_codec_test.
# This may be replaced when dependencies are built.
