// google-benchmark microbenchmarks: software encode/decode throughput of
// every code — the cost a simulator or trace-processing pipeline pays per
// address. (The hardware cost is what Tables 8/9 measure; this is the
// library-user cost.)
#include <benchmark/benchmark.h>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "trace/synthetic.h"

namespace {

using namespace abenc;

const std::vector<BusAccess>& Stream() {
  static const std::vector<BusAccess> stream = [] {
    SyntheticGenerator gen(5);
    return gen.MultiplexedLike(1 << 14, 0.35, 4, 32).ToBusAccesses();
  }();
  return stream;
}

void EncodeThroughput(benchmark::State& state, const std::string& name) {
  CodecOptions options;
  auto codec = MakeCodec(name, options);
  const auto& stream = Stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const BusAccess& access = stream[i];
    benchmark::DoNotOptimize(codec->Encode(access.address, access.sel));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

void RoundTripThroughput(benchmark::State& state, const std::string& name) {
  CodecOptions options;
  auto codec = MakeCodec(name, options);
  const auto& stream = Stream();
  std::size_t i = 0;
  for (auto _ : state) {
    const BusAccess& access = stream[i];
    const BusState bus = codec->Encode(access.address, access.sel);
    benchmark::DoNotOptimize(codec->Decode(bus, access.sel));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : abenc::AllCodecNames()) {
    benchmark::RegisterBenchmark(("encode/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   EncodeThroughput(s, name);
                                 });
    benchmark::RegisterBenchmark(("roundtrip/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   RoundTripThroughput(s, name);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
