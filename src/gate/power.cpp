#include "gate/power.h"

#include <algorithm>

namespace abenc::gate {
namespace {

double ActivityFactor(const GateSimulator& sim, NetId net) {
  return sim.cycles() == 0
             ? 0.0
             : static_cast<double>(sim.toggles(net)) /
                   static_cast<double>(sim.cycles());
}

}  // namespace

PowerReport EstimatePower(const Netlist& netlist, const GateSimulator& sim,
                          double frequency_hz, double vdd,
                          double glitch_per_level) {
  PowerReport report;
  std::vector<bool> is_output(netlist.net_count(), false);
  for (const Netlist::Output& o : netlist.outputs()) is_output[o.net] = true;
  const std::vector<unsigned> depth =
      glitch_per_level > 0.0 ? netlist.ComputeDepths()
                             : std::vector<unsigned>(netlist.net_count(), 0);

  for (NetId n = 0; n < netlist.net_count(); ++n) {
    double alpha = ActivityFactor(sim, n);
    if (alpha == 0.0) continue;
    if (!is_output[n]) {
      alpha *= 1.0 + glitch_per_level * static_cast<double>(depth[n]);
    }
    const double cap_f = netlist.NetCapacitancePf(n) * 1e-12;
    // One toggle dissipates C*V^2/2; alpha toggles per cycle at f cycles/s.
    const double watts = 0.5 * cap_f * vdd * vdd * frequency_hz * alpha;
    if (is_output[n]) {
      report.output_mw += watts * 1e3;
    } else {
      report.core_mw += watts * 1e3;
    }
  }
  report.total_mw = report.core_mw + report.output_mw;
  return report;
}

double PadPowerMw(const Netlist& netlist, const GateSimulator& sim,
                  double external_load_pf, double frequency_hz, double vdd) {
  double mw = 0.0;
  for (const Netlist::Output& o : netlist.outputs()) {
    const double alpha = ActivityFactor(sim, o.net);
    const double cap_f = external_load_pf * 1e-12;
    mw += 0.5 * cap_f * vdd * vdd * frequency_hz * alpha * 1e3;
  }
  return mw;
}

}  // namespace abenc::gate
