// The nine embedded benchmark kernels whose address streams stand in for
// the paper's MIPS traces (gzip, gunzip, ghostview, espresso, nova, jedi,
// latex, matlab, oracle).
//
// Each kernel is written in the assembler's MIPS subset and is chosen to
// match the workload character of its namesake: the instruction streams
// are dominated by short sequential runs broken by loops and calls, the
// data streams mix stack-frame reuse (the "-O0 loop counter" effect the
// paper calls out), sequential array sweeps and irregular references.
// DESIGN.md records this substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/bus_monitor.h"

namespace abenc::sim {

/// One embedded benchmark.
struct BenchmarkProgram {
  std::string name;         // the paper's benchmark name, e.g. "gzip"
  std::string description;  // what the kernel computes
  std::string source;       // assembly text
  std::uint64_t step_budget = 0;  // generous upper bound on retired instrs
};

/// All nine benchmarks, in the paper's table order.
const std::vector<BenchmarkProgram>& BenchmarkPrograms();

/// Extra kernels beyond the paper's set (fft, qsort, dhry), used by the
/// extension benches and the toolchain tests; FindBenchmarkProgram knows
/// them too.
const std::vector<BenchmarkProgram>& ExtendedBenchmarkPrograms();

/// Lookup by name; throws std::out_of_range for unknown names.
const BenchmarkProgram& FindBenchmarkProgram(const std::string& name);

/// The captured address streams of one benchmark run.
struct ProgramTraces {
  AddressTrace instruction;
  AddressTrace data;
  AddressTrace multiplexed;
  std::uint64_t retired_instructions = 0;
  InstructionMix mix;
};

/// Assemble, load and run a benchmark to completion (BREAK), capturing its
/// bus streams. Throws ExecutionError if the step budget is exhausted —
/// i.e. every library program is guaranteed to halt or the tests fail.
ProgramTraces RunBenchmark(const BenchmarkProgram& program);

/// Convenience: run every library benchmark; the workhorse of the
/// Table 2-7 benches.
std::vector<ProgramTraces> RunAllBenchmarks();

/// As RunBenchmark, but with split L1 caches in front of the recorded
/// bus: the returned traces hold the line-granular *miss* streams an
/// external bus behind the caches would carry (the paper's
/// memory-hierarchy future-work scenario). Miss rates are reported too.
struct CachedProgramTraces {
  ProgramTraces external;  // post-cache streams, line-aligned addresses
  double icache_miss_rate = 0.0;
  double dcache_miss_rate = 0.0;
};
CachedProgramTraces RunBenchmarkWithCaches(const BenchmarkProgram& program,
                                           const struct CacheConfig& icache,
                                           const struct CacheConfig& dcache);

}  // namespace abenc::sim
