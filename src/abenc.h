// Umbrella header: the whole public surface of the library.
//
// Fine-grained includes are preferred in library code (and used
// throughout this repository); this header exists for quick experiments
// and downstream prototypes:
//
//   #include "abenc.h"
//   auto codec = abenc::MakeCodec("dual-t0-bi");
#pragma once

// Core: the bus codes and evaluation.
#include "analysis/analytical.h"
#include "analysis/markov.h"
#include "core/beach_codec.h"
#include "core/binary_codec.h"
#include "core/bus_invert_codec.h"
#include "core/codec.h"
#include "core/codec_factory.h"
#include "core/couple_invert_codec.h"
#include "core/coupling.h"
#include "core/dual_t0_codec.h"
#include "core/dual_t0bi_codec.h"
#include "core/experiment.h"
#include "core/gray_codec.h"
#include "core/inc_xor_codec.h"
#include "core/mtf_codec.h"
#include "core/offset_codec.h"
#include "core/resilience.h"
#include "core/stream_evaluator.h"
#include "core/t0_codec.h"
#include "core/t0bi_codec.h"
#include "core/transition_counter.h"
#include "core/types.h"
#include "core/working_zone_codec.h"

// The fault-tolerant channel layer.
#include "channel/bus_channel.h"
#include "channel/fault_model.h"
#include "channel/fault_models.h"
#include "channel/secded.h"
#include "channel/upset.h"

// Traces.
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"

// The MIPS-subset simulator substrate.
#include "sim/assembler.h"
#include "sim/bus_monitor.h"
#include "sim/cache.h"
#include "sim/cpu.h"
#include "sim/disassembler.h"
#include "sim/dram.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/program_library.h"

// The gate-level substrate.
#include "gate/cell.h"
#include "gate/circuits.h"
#include "gate/netlist.h"
#include "gate/power.h"
#include "gate/probabilistic.h"
#include "gate/simulator.h"
#include "gate/system.h"
#include "gate/timing.h"
#include "gate/vcd.h"
#include "gate/verilog.h"

// Reporting.
#include "report/table.h"
