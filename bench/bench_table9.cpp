// Table 9: encoder power including output pads for off-chip bus loads
// (10 - 200 pF per line). The encoder core drives the pad inputs
// (0.01 pF per the paper); pad outputs drive the external bus at the
// encoder's reduced switching activity — which is where the codes earn
// their power back. Also reports the crossover loads the paper calls out
// (T0 convenient for 20-100 pF, dual T0_BI beyond).
#include <iostream>

#include "analysis/analytical.h"
#include "bench/bench_util.h"
#include "bench/power_util.h"
#include "gate/power.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace abenc;
  using namespace abenc::bench;

  const BenchOptions bench_options = ParseBenchOptions(argc, argv);
  MetricsSession metrics(bench_options.metrics_path);

  const auto stream = ReferenceStream(6000);
  auto codecs =
      SimulateSection4Codecs(stream, gate::kPadInputCapacitancePf);

  std::cout << "Table 9: Enc/Dec Power Consumption for Off-Chip Loads\n";
  std::cout << "(global = encoder logic + output pads + decoder logic)\n\n";

  TextTable table({"Load (pF)", "Binary Pads (mW)", "Binary Global (mW)",
                   "T0 Pads (mW)", "T0 Global (mW)", "Dual T0_BI Pads (mW)",
                   "Dual T0_BI Global (mW)"});

  const std::vector<double> loads = {2, 5, 10, 20, 40, 60, 80, 100, 140, 200};
  std::vector<std::vector<double>> global(codecs.size());

  for (double load : loads) {
    std::vector<std::string> row = {FormatFixed(load, 0)};
    for (std::size_t i = 0; i < codecs.size(); ++i) {
      const double pads = gate::PadPowerMw(codecs[i].encoder.netlist,
                                           *codecs[i].encoder_sim, load);
      const double enc_logic =
          gate::EstimatePower(codecs[i].encoder.netlist,
                              *codecs[i].encoder_sim, gate::kClockHz,
                              gate::kVddVolts,
                              gate::kDefaultGlitchPerLevel)
              .total_mw;
      const double dec_logic =
          gate::EstimatePower(codecs[i].decoder.netlist,
                              *codecs[i].decoder_sim, gate::kClockHz,
                              gate::kVddVolts,
                              gate::kDefaultGlitchPerLevel)
              .total_mw;
      const double total = pads + enc_logic + dec_logic;
      global[i].push_back(total);
      row.push_back(FormatFixed(pads, 3));
      row.push_back(FormatFixed(total, 3));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString() << "\n";

  // CrossoverAbscissa(x, a, b): smallest load where curve a stops being
  // below curve b.
  const double binary_loses_to_t0 =
      CrossoverAbscissa(loads, global[0], global[1]);
  const double t0_loses_to_dual =
      CrossoverAbscissa(loads, global[1], global[2]);
  std::cout << "Crossovers (linear interpolation between sampled loads):\n";
  if (binary_loses_to_t0 >= 0) {
    std::cout << "  binary stops beating T0 above      ~"
              << FormatFixed(binary_loses_to_t0, 1) << " pF\n";
  } else {
    std::cout << "  binary beats T0 across the whole sweep\n";
  }
  if (t0_loses_to_dual >= 0) {
    std::cout << "  T0 stops beating dual T0_BI above  ~"
              << FormatFixed(t0_loses_to_dual, 1) << " pF\n";
  } else {
    std::cout << "  T0 beats dual T0_BI across the whole sweep\n";
  }
  std::cout << "Paper's qualitative result: a low-load region where the\n"
               "plain code wins, a middle region where T0 is convenient,\n"
               "and dual T0_BI best for large off-chip loads.\n";
  metrics.WriteIfEnabled();
  return 0;
}
