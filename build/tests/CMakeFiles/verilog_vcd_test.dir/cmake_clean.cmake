file(REMOVE_RECURSE
  "CMakeFiles/verilog_vcd_test.dir/verilog_vcd_test.cpp.o"
  "CMakeFiles/verilog_vcd_test.dir/verilog_vcd_test.cpp.o.d"
  "verilog_vcd_test"
  "verilog_vcd_test.pdb"
  "verilog_vcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
