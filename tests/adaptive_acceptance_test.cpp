// Acceptance gates for the adaptive meta-codec, straight from the issue:
// (a) on a mixed-phase workload — alternating regimes engineered so each
// palette member is the wrong choice somewhere — adaptive must strictly
// beat every single member it is built from, and (b) on all nine paper
// benchmark streams it must never do worse than uncoded binary. Both are
// hard ctest assertions on exact transition counts, not trends.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive_codec.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "sim/program_library.h"
#include "verify/stream_gen.h"

namespace abenc {
namespace {

using verify::MixSeed;

// The bench setup: 32-bit multiplexed MIPS bus, word stride 4.
CodecOptions BenchOptions() {
  CodecOptions options;
  options.width = 32;
  options.stride = 4;
  return options;
}

// A deterministic workload that changes character every phase:
//   - stride-4 sequential runs (T0 territory: the bus can freeze),
//   - stride-1 scans the codec's stride knob does not match (Gray's
//     single-toggle regime; T0 sees every step as out-of-sequence),
//   - uniform random bursts (bus-invert's regime).
// No single member wins all three, so a correct per-window selector has
// to beat each of them end to end.
std::vector<BusAccess> MixedPhaseWorkload() {
  std::vector<BusAccess> stream;
  std::uint64_t chain = 0x3D1FEEDull;
  const auto next = [&chain] { return MixSeed(chain++); };
  const Word mask = LowMask(32);
  for (int cycle = 0; cycle < 4; ++cycle) {
    Word base = (next() & mask) & ~Word{0xFFF};
    for (std::size_t i = 0; i < 512; ++i) {
      stream.push_back(BusAccess{(base + 4 * i) & mask, true});
    }
    base = (next() & mask) & ~Word{0xFFF};
    for (std::size_t i = 0; i < 512; ++i) {
      stream.push_back(BusAccess{(base + i) & mask, true});
    }
    for (std::size_t i = 0; i < 512; ++i) {
      stream.push_back(BusAccess{next() & mask, true});
    }
  }
  return stream;
}

EvalResult EvaluateOn(const std::string& codec_name,
                      const CodecOptions& options,
                      std::span<const BusAccess> stream) {
  const CodecPtr codec = MakeCodec(codec_name, options);
  return Evaluate(*codec, stream, options.stride);
}

TEST(AdaptiveAcceptanceTest, StrictlyBeatsEveryMemberOnMixedPhases) {
  const CodecOptions options = BenchOptions();
  const std::vector<BusAccess> stream = MixedPhaseWorkload();

  const EvalResult adaptive = EvaluateOn("adaptive", options, stream);
  for (const std::string& member : AdaptiveCodec::DefaultPalette()) {
    const EvalResult alone = EvaluateOn(member, options, stream);
    EXPECT_LT(adaptive.transitions, alone.transitions)
        << "adaptive (" << adaptive.transitions
        << " transitions) failed to beat standalone " << member << " ("
        << alone.transitions << ") on the mixed-phase workload";
  }
}

TEST(AdaptiveAcceptanceTest, NeverLosesToBinaryOnThePaperStreams) {
  const CodecOptions options = BenchOptions();
  for (const sim::ProgramTraces& traces : sim::RunAllBenchmarks()) {
    const std::vector<BusAccess> stream =
        traces.multiplexed.ToBusAccesses();
    const EvalResult binary = EvaluateOn("binary", options, stream);
    const EvalResult adaptive = EvaluateOn("adaptive", options, stream);
    EXPECT_LE(adaptive.transitions, binary.transitions)
        << "adaptive (" << adaptive.transitions
        << " transitions) lost to binary (" << binary.transitions
        << ") on the " << traces.multiplexed.name() << " stream";
  }
}

}  // namespace
}  // namespace abenc
