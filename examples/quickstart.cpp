// Quickstart: encode an address stream with every code in the library and
// compare switching activity against plain binary.
//
//   $ ./quickstart
//
// Walks through the three core steps of the API:
//   1. get a stream (here: a synthetic instruction-like trace),
//   2. build codecs through the factory,
//   3. evaluate transitions and savings with StreamEvaluator.
#include <iostream>

#include "core/beach_codec.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "report/table.h"
#include "trace/synthetic.h"

int main() {
  using namespace abenc;

  // 1. An address stream. SyntheticGenerator also offers data-like,
  //    multiplexed, Markov and Zipf models; sim::RunBenchmark() captures
  //    streams from real programs on the bundled MIPS-subset simulator.
  SyntheticGenerator generator(/*seed=*/42);
  const AddressTrace trace = generator.MultiplexedLike(
      /*count=*/100000, /*data_ratio=*/0.35, /*stride=*/4, /*width=*/32);
  const auto accesses = trace.ToBusAccesses();

  // 2./3. Encode with each code and count bus-line transitions. The
  //    `verify_decode` flag cross-checks decode(encode(b)) == b while
  //    measuring, so the numbers below are for provably decodable streams.
  CodecOptions options;  // 32-bit bus, stride 4 (a word-addressed MIPS)
  auto binary = MakeCodec("binary", options);
  const EvalResult base = Evaluate(*binary, accesses, options.stride, true);

  TextTable table({"Code", "Lines", "Transitions", "Avg/cycle", "Savings"});
  const std::vector<Word> addresses = trace.Addresses();
  for (const std::string& name : AllCodecNames()) {
    auto codec = MakeCodec(name, options);
    // The Beach code is stream-adaptive: train it on a prefix, exactly as
    // its authors tune it to the embedded code it will serve.
    if (auto* beach = dynamic_cast<BeachCodec*>(codec.get())) {
      beach->Train({addresses.data(), addresses.size() / 4});
    }
    const EvalResult r = Evaluate(*codec, accesses, options.stride, true);
    table.AddRow({codec->display_name() + " (" + name + ")",
                  std::to_string(codec->total_lines()),
                  FormatCount(r.transitions),
                  FormatFixed(r.average_transitions_per_cycle(), 3),
                  FormatPercent(SavingsPercent(r.transitions,
                                               base.transitions))});
  }

  std::cout << "Multiplexed synthetic stream, " << accesses.size()
            << " references, "
            << FormatPercent(base.in_sequence_percent)
            << " in-sequence:\n\n"
            << table.ToString()
            << "\nSavings are vs. plain binary; redundant lines are "
               "counted, as in the paper.\n";
  return 0;
}
