#include "bench/bench_util.h"

#include <iostream>

#include "core/codec_factory.h"
#include "core/experiment.h"
#include "report/table.h"

namespace abenc::bench {

const AddressTrace& SelectStream(const sim::ProgramTraces& traces,
                                 StreamKind kind) {
  switch (kind) {
    case StreamKind::kInstruction: return traces.instruction;
    case StreamKind::kData: return traces.data;
    case StreamKind::kMultiplexed: return traces.multiplexed;
  }
  return traces.multiplexed;
}

void PrintExperimentalTable(const std::string& title, StreamKind kind,
                            const std::vector<std::string>& codec_names) {
  const CodecOptions options;  // 32-bit bus, stride 4: the MIPS setup

  std::vector<NamedStream> streams;
  for (const sim::BenchmarkProgram& program : sim::BenchmarkPrograms()) {
    const sim::ProgramTraces traces = sim::RunBenchmark(program);
    streams.push_back(
        NamedStream{program.name, SelectStream(traces, kind).ToBusAccesses()});
  }

  const Comparison comparison =
      RunComparison(codec_names, streams, options);

  std::vector<std::string> headers = {"Benchmark", "Stream Length",
                                      "In-Seq Addr.", "Binary Trans."};
  for (const std::string& name : codec_names) {
    const auto codec = MakeCodec(name, options);
    headers.push_back(codec->display_name() + " Trans.");
    headers.push_back("Savings");
  }
  TextTable table(headers);

  for (const ComparisonRow& row : comparison.rows) {
    std::vector<std::string> cells = {
        row.stream_name,
        FormatCount(static_cast<long long>(row.binary.stream_length)),
        FormatPercent(row.binary.in_sequence_percent),
        FormatCount(row.binary.transitions)};
    for (const ComparisonCell& cell : row.cells) {
      cells.push_back(FormatCount(cell.result.transitions));
      cells.push_back(FormatPercent(cell.savings_percent));
    }
    table.AddRow(std::move(cells));
  }

  std::vector<std::string> average = {
      "Average", "", FormatPercent(comparison.average_in_sequence_percent()),
      ""};
  for (double savings : comparison.average_savings()) {
    average.push_back("");
    average.push_back(FormatPercent(savings));
  }
  table.AddRule();
  table.AddRow(std::move(average));

  std::cout << title << "\n" << table.ToString() << "\n";
}

}  // namespace abenc::bench
