// Tests for the batch-comparison API.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "trace/synthetic.h"

namespace abenc {
namespace {

std::vector<NamedStream> TwoStreams() {
  SyntheticGenerator gen(42);
  return {
      NamedStream{"sequential",
                  gen.Sequential(5000, 0x400000, 4, 32).ToBusAccesses()},
      NamedStream{"random", gen.UniformRandom(5000, 32).ToBusAccesses()},
  };
}

TEST(ComparisonTest, MatrixShapeMatchesInputs) {
  const Comparison c =
      RunComparison({"t0", "bus-invert"}, TwoStreams(), CodecOptions{});
  ASSERT_EQ(c.rows.size(), 2u);
  ASSERT_EQ(c.codec_names.size(), 2u);
  for (const ComparisonRow& row : c.rows) {
    EXPECT_EQ(row.cells.size(), 2u);
    EXPECT_EQ(row.binary.stream_length, 5000u);
  }
  EXPECT_EQ(c.rows[0].stream_name, "sequential");
}

TEST(ComparisonTest, SavingsMatchManualComputation) {
  const auto streams = TwoStreams();
  const Comparison c = RunComparison({"t0"}, streams, CodecOptions{});
  const ComparisonRow& row = c.rows[0];
  EXPECT_DOUBLE_EQ(row.cells[0].savings_percent,
                   SavingsPercent(row.cells[0].result.transitions,
                                  row.binary.transitions));
  // Sequential stream: T0 saves nearly everything.
  EXPECT_GT(row.cells[0].savings_percent, 99.0);
}

TEST(ComparisonTest, AveragesAreColumnMeans) {
  const Comparison c =
      RunComparison({"t0", "bus-invert"}, TwoStreams(), CodecOptions{});
  const auto averages = c.average_savings();
  ASSERT_EQ(averages.size(), 2u);
  double expected = 0.0;
  for (const ComparisonRow& row : c.rows) {
    expected += row.cells[0].savings_percent;
  }
  EXPECT_DOUBLE_EQ(averages[0], expected / 2.0);
  EXPECT_GT(c.average_in_sequence_percent(), 49.0);  // one stream is 100%
}

TEST(ComparisonTest, ConfigureHookAdjustsPerCodecOptions) {
  SyntheticGenerator gen(7);
  const std::vector<NamedStream> streams = {
      NamedStream{"seq8", gen.Sequential(4000, 0, 8, 32).ToBusAccesses()}};
  CodecOptions options;
  options.stride = 4;  // wrong for the stream
  const Comparison mismatched = RunComparison({"t0"}, streams, options);
  const Comparison fixed =
      RunComparison({"t0"}, streams, options,
                    [](const std::string& name, CodecOptions& o) {
                      if (name == "t0") o.stride = 8;
                    });
  EXPECT_LT(mismatched.rows[0].cells[0].savings_percent, 5.0);
  EXPECT_GT(fixed.rows[0].cells[0].savings_percent, 99.0);
}

TEST(ComparisonTest, EmptyInputsProduceEmptyMatrix) {
  const Comparison c = RunComparison({}, {}, CodecOptions{});
  EXPECT_TRUE(c.rows.empty());
  EXPECT_TRUE(c.average_savings().empty());
  EXPECT_DOUBLE_EQ(c.average_in_sequence_percent(), 0.0);
}

}  // namespace
}  // namespace abenc
