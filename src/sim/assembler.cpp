#include "sim/assembler.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace abenc::sim {
namespace {

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StripComment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

/// Split "a, b, 8($sp)" on top-level commas.
std::vector<std::string> SplitOperands(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (char c : text) {
    if (c == '"') in_string = !in_string;
    if (c == ',' && !in_string) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = Trim(current);
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool LooksLikeNumber(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  return i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]));
}

std::optional<std::int64_t> ParseNumber(const std::string& text) {
  if (!LooksLikeNumber(text)) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(text, &consumed, 0);
    if (consumed != text.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Intermediate representation
// ---------------------------------------------------------------------------

struct SourceInstruction {
  std::size_t line = 0;
  std::uint32_t address = 0;  // assigned in pass 1
  std::string mnemonic;
  std::vector<std::string> operands;
};

struct Segments {
  std::vector<SourceInstruction> text;
  std::vector<std::uint8_t> data;
  std::map<std::string, std::uint32_t> symbols;
};

/// Number of machine instructions a (pseudo-)instruction expands to.
/// Must agree exactly with Expand() below.
std::size_t ExpansionSize(const SourceInstruction& instr) {
  const std::string& m = instr.mnemonic;
  if (m == "la") return 2;
  if (m == "li") {
    const auto value = ParseNumber(instr.operands.size() > 1
                                       ? instr.operands[1]
                                       : std::string());
    if (!value) return 2;  // validated later; worst case
    if (*value >= -32768 && *value <= 32767) return 1;
    if ((*value & 0xFFFF) == 0 && *value >= 0 && *value <= 0xFFFF0000LL) {
      return 1;
    }
    return 2;
  }
  if (m == "blt" || m == "bge" || m == "bgt" || m == "ble") return 2;
  if (m == "mul" || m == "divq" || m == "rem") return 2;
  static const char* kMemOps[] = {"lb", "lh", "lw", "lbu",
                                  "lhu", "sb", "sh", "sw"};
  for (const char* op : kMemOps) {
    if (m == op) {
      // The label form (no base register) expands through $at.
      return instr.operands.size() > 1 &&
                     instr.operands[1].find('(') == std::string::npos
                 ? 2
                 : 1;
    }
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Pass 1: layout
// ---------------------------------------------------------------------------

class LayoutPass {
 public:
  Segments Run(const std::string& source) {
    std::istringstream in(source);
    std::string raw_line;
    std::size_t line_no = 0;
    while (std::getline(in, raw_line)) {
      ++line_no;
      std::string line = Trim(StripComment(raw_line));
      while (!line.empty()) {
        // Leading labels; several may share a line.
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos &&
            std::all_of(line.begin(), line.begin() + colon, IsLabelChar) &&
            colon > 0) {
          DefineLabel(line.substr(0, colon), line_no);
          line = Trim(line.substr(colon + 1));
          continue;
        }
        break;
      }
      if (line.empty()) continue;
      if (line[0] == '.') {
        Directive(line, line_no);
      } else {
        InstructionLine(line, line_no);
      }
    }
    AlignData(4);
    return std::move(segments_);
  }

 private:
  void DefineLabel(const std::string& name, std::size_t line_no) {
    if (segments_.symbols.contains(name)) {
      throw AssemblyError(line_no, "duplicate label '" + name + "'");
    }
    segments_.symbols[name] =
        in_text_ ? NextTextAddress()
                 : kDataBase + static_cast<std::uint32_t>(
                                   segments_.data.size());
  }

  std::uint32_t NextTextAddress() const {
    return kTextBase + static_cast<std::uint32_t>(text_words_ * 4);
  }

  void AlignData(std::uint32_t alignment) {
    while (segments_.data.size() % alignment != 0) {
      segments_.data.push_back(0);
    }
  }

  void Directive(const std::string& line, std::size_t line_no) {
    std::istringstream in(line);
    std::string name;
    in >> name;
    std::string rest;
    std::getline(in, rest);
    rest = Trim(rest);

    if (name == ".text") {
      in_text_ = true;
      return;
    }
    if (name == ".data") {
      in_text_ = false;
      return;
    }
    if (name == ".globl") return;  // accepted, no effect
    if (in_text_) {
      throw AssemblyError(line_no, name + " is only valid in .data");
    }
    if (name == ".word" || name == ".half" || name == ".byte") {
      const unsigned size = name == ".word" ? 4 : name == ".half" ? 2 : 1;
      AlignData(size);
      for (const std::string& field : SplitOperands(rest)) {
        const auto value = ParseNumber(field);
        if (!value) {
          // Late-bound label value: remember a fixup.
          if (size != 4) {
            throw AssemblyError(line_no,
                                "label values need .word: '" + field + "'");
          }
          fixups_.push_back(
              {line_no, segments_.data.size(), field});
          for (unsigned i = 0; i < 4; ++i) segments_.data.push_back(0);
          continue;
        }
        for (unsigned i = 0; i < size; ++i) {
          segments_.data.push_back(
              static_cast<std::uint8_t>((*value >> (8 * i)) & 0xFF));
        }
      }
      return;
    }
    if (name == ".space") {
      const auto value = ParseNumber(rest);
      if (!value || *value < 0) {
        throw AssemblyError(line_no, "bad .space size '" + rest + "'");
      }
      segments_.data.insert(segments_.data.end(),
                            static_cast<std::size_t>(*value), 0);
      return;
    }
    if (name == ".align") {
      const auto value = ParseNumber(rest);
      if (!value || *value < 0 || *value > 12) {
        throw AssemblyError(line_no, "bad .align '" + rest + "'");
      }
      AlignData(1u << *value);
      return;
    }
    if (name == ".asciiz") {
      const std::size_t open = rest.find('"');
      const std::size_t close = rest.rfind('"');
      if (open == std::string::npos || close <= open) {
        throw AssemblyError(line_no, ".asciiz needs a quoted string");
      }
      for (std::size_t i = open + 1; i < close; ++i) {
        char c = rest[i];
        if (c == '\\' && i + 1 < close) {
          ++i;
          switch (rest[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default:
              throw AssemblyError(line_no, "unknown escape in .asciiz");
          }
        }
        segments_.data.push_back(static_cast<std::uint8_t>(c));
      }
      segments_.data.push_back(0);
      return;
    }
    throw AssemblyError(line_no, "unknown directive " + name);
  }

  void InstructionLine(const std::string& line, std::size_t line_no) {
    if (!in_text_) {
      throw AssemblyError(line_no, "instruction outside .text");
    }
    std::istringstream in(line);
    SourceInstruction instr;
    instr.line = line_no;
    in >> instr.mnemonic;
    std::string rest;
    std::getline(in, rest);
    instr.operands = SplitOperands(Trim(rest));
    if (instr.operands.size() == 1 && instr.operands[0].empty()) {
      instr.operands.clear();
    }
    instr.address = NextTextAddress();
    text_words_ += ExpansionSize(instr);
    segments_.text.push_back(std::move(instr));
  }

 public:
  struct DataFixup {
    std::size_t line;
    std::size_t offset;  // into segments_.data
    std::string label;
  };
  std::vector<DataFixup> TakeFixups() { return std::move(fixups_); }

 private:
  Segments segments_;
  bool in_text_ = true;
  std::size_t text_words_ = 0;
  std::vector<DataFixup> fixups_;
};

// ---------------------------------------------------------------------------
// Pass 2: encoding
// ---------------------------------------------------------------------------

class EncodePass {
 public:
  EncodePass(const Segments& segments) : segments_(segments) {}

  std::vector<std::uint32_t> Run() {
    std::vector<std::uint32_t> words;
    for (const SourceInstruction& instr : segments_.text) {
      const std::size_t before = words.size();
      Expand(instr, words);
      const std::size_t emitted = words.size() - before;
      if (emitted != ExpansionSize(instr)) {
        throw AssemblyError(instr.line,
                            "internal: expansion size mismatch for " +
                                instr.mnemonic);
      }
    }
    return words;
  }

 private:
  [[noreturn]] void Error(const SourceInstruction& i,
                          const std::string& what) const {
    throw AssemblyError(i.line, what + " in '" + i.mnemonic + "'");
  }

  unsigned Reg(const SourceInstruction& i, std::size_t index) const {
    if (index >= i.operands.size()) Error(i, "missing register operand");
    const auto reg = ParseRegister(i.operands[index]);
    if (!reg) Error(i, "bad register '" + i.operands[index] + "'");
    return *reg;
  }

  std::int64_t Imm(const SourceInstruction& i, std::size_t index) const {
    if (index >= i.operands.size()) Error(i, "missing immediate");
    const auto value = ParseNumber(i.operands[index]);
    if (!value) Error(i, "bad immediate '" + i.operands[index] + "'");
    return *value;
  }

  std::uint16_t SignedImm16(const SourceInstruction& i,
                            std::size_t index) const {
    const std::int64_t v = Imm(i, index);
    if (v < -32768 || v > 32767) Error(i, "immediate out of signed range");
    return static_cast<std::uint16_t>(v);
  }

  std::uint16_t UnsignedImm16(const SourceInstruction& i,
                              std::size_t index) const {
    const std::int64_t v = Imm(i, index);
    if (v < 0 || v > 0xFFFF) Error(i, "immediate out of unsigned range");
    return static_cast<std::uint16_t>(v);
  }

  /// Resolve "label" or "label+N" / "label-N".
  std::uint32_t LabelValue(const SourceInstruction& i,
                           const std::string& text) const {
    std::string name = text;
    std::int64_t offset = 0;
    const std::size_t plus = text.find_first_of("+-", 1);
    if (plus != std::string::npos) {
      name = Trim(text.substr(0, plus));
      // Tolerate spaces around the sign: "arr + 8" == "arr+8".
      std::string offset_text;
      for (char c : text.substr(plus)) {
        if (!std::isspace(static_cast<unsigned char>(c))) offset_text += c;
      }
      const auto parsed = ParseNumber(offset_text);
      if (!parsed) Error(i, "bad label offset '" + text + "'");
      offset = *parsed;
    }
    const auto it = segments_.symbols.find(name);
    if (it == segments_.symbols.end()) {
      Error(i, "undefined label '" + name + "'");
    }
    return static_cast<std::uint32_t>(it->second + offset);
  }

  std::uint16_t BranchOffset(const SourceInstruction& i, std::size_t index,
                             std::uint32_t pc) const {
    if (index >= i.operands.size()) Error(i, "missing branch target");
    const std::uint32_t target = LabelValue(i, i.operands[index]);
    const std::int64_t delta = (static_cast<std::int64_t>(target) -
                                (static_cast<std::int64_t>(pc) + 4)) /
                               4;
    if ((target - pc) % 4 != 0 || delta < -32768 || delta > 32767) {
      Error(i, "branch target out of range");
    }
    return static_cast<std::uint16_t>(delta);
  }

  /// Parse "offset($base)" or "($base)".
  void MemOperand(const SourceInstruction& i, std::size_t index,
                  std::uint16_t& offset, unsigned& base) const {
    if (index >= i.operands.size()) Error(i, "missing memory operand");
    const std::string& text = i.operands[index];
    const std::size_t open = text.find('(');
    const std::size_t close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      Error(i, "bad memory operand '" + text + "'");
    }
    const std::string offset_text = Trim(text.substr(0, open));
    std::int64_t parsed_offset = 0;
    if (!offset_text.empty()) {
      const auto value = ParseNumber(offset_text);
      if (!value) Error(i, "bad memory offset '" + offset_text + "'");
      parsed_offset = *value;
    }
    if (parsed_offset < -32768 || parsed_offset > 32767) {
      Error(i, "memory offset out of range");
    }
    offset = static_cast<std::uint16_t>(parsed_offset);
    const auto reg =
        ParseRegister(Trim(text.substr(open + 1, close - open - 1)));
    if (!reg) Error(i, "bad base register in '" + text + "'");
    base = *reg;
  }

  void Expand(const SourceInstruction& i, std::vector<std::uint32_t>& out) {
    const std::string& m = i.mnemonic;
    const std::uint32_t pc =
        kTextBase + static_cast<std::uint32_t>(out.size() * 4);

    // --- R-type three-register ---
    static const std::map<std::string, Funct> kThreeReg = {
        {"add", Funct::kAdd}, {"addu", Funct::kAddu},
        {"sub", Funct::kSub}, {"subu", Funct::kSubu},
        {"and", Funct::kAnd}, {"or", Funct::kOr},
        {"xor", Funct::kXor}, {"nor", Funct::kNor},
        {"slt", Funct::kSlt}, {"sltu", Funct::kSltu}};
    if (const auto it = kThreeReg.find(m); it != kThreeReg.end()) {
      out.push_back(EncodeR(it->second, Reg(i, 0), Reg(i, 1), Reg(i, 2)));
      return;
    }

    // --- variable shifts: MIPS operand order is `sllv rd, rt, rs`
    // (value in rt, shift amount in rs), matching the disassembler ---
    static const std::map<std::string, Funct> kVarShift = {
        {"sllv", Funct::kSllv},
        {"srlv", Funct::kSrlv},
        {"srav", Funct::kSrav}};
    if (const auto it = kVarShift.find(m); it != kVarShift.end()) {
      out.push_back(EncodeR(it->second, Reg(i, 0), Reg(i, 2), Reg(i, 1)));
      return;
    }

    // --- shifts with immediate shamt ---
    static const std::map<std::string, Funct> kShift = {
        {"sll", Funct::kSll}, {"srl", Funct::kSrl}, {"sra", Funct::kSra}};
    if (const auto it = kShift.find(m); it != kShift.end()) {
      const std::int64_t shamt = Imm(i, 2);
      if (shamt < 0 || shamt > 31) Error(i, "shift amount out of range");
      out.push_back(EncodeR(it->second, Reg(i, 0), 0, Reg(i, 1),
                            static_cast<unsigned>(shamt)));
      return;
    }

    // --- I-type ALU ---
    if (m == "addi" || m == "addiu" || m == "slti" || m == "sltiu") {
      const Opcode op = m == "addi"    ? Opcode::kAddi
                        : m == "addiu" ? Opcode::kAddiu
                        : m == "slti"  ? Opcode::kSlti
                                       : Opcode::kSltiu;
      out.push_back(EncodeI(op, Reg(i, 0), Reg(i, 1), SignedImm16(i, 2)));
      return;
    }
    if (m == "andi" || m == "ori" || m == "xori") {
      const Opcode op = m == "andi" ? Opcode::kAndi
                        : m == "ori" ? Opcode::kOri
                                     : Opcode::kXori;
      out.push_back(EncodeI(op, Reg(i, 0), Reg(i, 1), UnsignedImm16(i, 2)));
      return;
    }
    if (m == "lui") {
      out.push_back(EncodeI(Opcode::kLui, Reg(i, 0), 0, UnsignedImm16(i, 1)));
      return;
    }

    // --- loads/stores ---
    static const std::map<std::string, Opcode> kMem = {
        {"lb", Opcode::kLb},   {"lh", Opcode::kLh},   {"lw", Opcode::kLw},
        {"lbu", Opcode::kLbu}, {"lhu", Opcode::kLhu}, {"sb", Opcode::kSb},
        {"sh", Opcode::kSh},   {"sw", Opcode::kSw}};
    if (const auto it = kMem.find(m); it != kMem.end()) {
      if (i.operands.size() > 1 &&
          i.operands[1].find('(') == std::string::npos) {
        // Label form: lui $at with the carry-adjusted high half, then
        // access through a signed low offset (the classic %hi/%lo split).
        const std::uint32_t value = LabelValue(i, i.operands[1]);
        const std::uint32_t high = (value + 0x8000u) >> 16;
        const auto low = static_cast<std::uint16_t>(value - (high << 16));
        out.push_back(EncodeI(Opcode::kLui, 1, 0,
                              static_cast<std::uint16_t>(high)));
        out.push_back(EncodeI(it->second, Reg(i, 0), 1, low));
        return;
      }
      std::uint16_t offset = 0;
      unsigned base = 0;
      MemOperand(i, 1, offset, base);
      out.push_back(EncodeI(it->second, Reg(i, 0), base, offset));
      return;
    }

    // --- branches ---
    if (m == "beq" || m == "bne") {
      const Opcode op = m == "beq" ? Opcode::kBeq : Opcode::kBne;
      out.push_back(
          EncodeI(op, Reg(i, 1), Reg(i, 0), BranchOffset(i, 2, pc)));
      return;
    }
    if (m == "blez" || m == "bgtz") {
      const Opcode op = m == "blez" ? Opcode::kBlez : Opcode::kBgtz;
      out.push_back(EncodeI(op, 0, Reg(i, 0), BranchOffset(i, 1, pc)));
      return;
    }
    if (m == "bltz" || m == "bgez") {
      out.push_back(EncodeI(Opcode::kRegImm, m == "bltz" ? 0 : 1, Reg(i, 0),
                            BranchOffset(i, 1, pc)));
      return;
    }
    if (m == "beqz" || m == "bnez") {
      const Opcode op = m == "beqz" ? Opcode::kBeq : Opcode::kBne;
      out.push_back(EncodeI(op, 0, Reg(i, 0), BranchOffset(i, 1, pc)));
      return;
    }
    if (m == "b") {
      out.push_back(EncodeI(Opcode::kBeq, 0, 0, BranchOffset(i, 0, pc)));
      return;
    }
    if (m == "blt" || m == "bge" || m == "bgt" || m == "ble") {
      // slt $at, x, y ; b{ne,eq} $at, $zero, target
      const bool swapped = m == "bgt" || m == "ble";
      const unsigned lhs = swapped ? Reg(i, 1) : Reg(i, 0);
      const unsigned rhs = swapped ? Reg(i, 0) : Reg(i, 1);
      out.push_back(EncodeR(Funct::kSlt, 1, lhs, rhs));
      const std::uint32_t branch_pc = pc + 4;
      const Opcode op =
          (m == "blt" || m == "bgt") ? Opcode::kBne : Opcode::kBeq;
      out.push_back(EncodeI(op, 0, 1, BranchOffset(i, 2, branch_pc)));
      return;
    }

    // --- jumps ---
    if (m == "j" || m == "jal") {
      if (i.operands.empty()) Error(i, "missing jump target");
      const std::uint32_t target = LabelValue(i, i.operands[0]);
      if (target % 4 != 0) Error(i, "misaligned jump target");
      out.push_back(EncodeJ(m == "j" ? Opcode::kJ : Opcode::kJal,
                            target >> 2));
      return;
    }
    if (m == "jr") {
      out.push_back(EncodeR(Funct::kJr, 0, Reg(i, 0), 0));
      return;
    }
    if (m == "jalr") {
      out.push_back(EncodeR(Funct::kJalr, 31, Reg(i, 0), 0));
      return;
    }

    // --- HI/LO ---
    if (m == "mult" || m == "multu" || m == "div" || m == "divu") {
      const Funct f = m == "mult"    ? Funct::kMult
                      : m == "multu" ? Funct::kMultu
                      : m == "div"   ? Funct::kDiv
                                     : Funct::kDivu;
      out.push_back(EncodeR(f, 0, Reg(i, 0), Reg(i, 1)));
      return;
    }
    if (m == "mfhi" || m == "mflo") {
      out.push_back(EncodeR(m == "mfhi" ? Funct::kMfhi : Funct::kMflo,
                            Reg(i, 0), 0, 0));
      return;
    }

    // --- system ---
    if (m == "break" || m == "halt") {
      out.push_back(EncodeR(Funct::kBreak, 0, 0, 0));
      return;
    }
    if (m == "syscall") {
      out.push_back(EncodeR(Funct::kSyscall, 0, 0, 0));
      return;
    }
    if (m == "nop") {
      out.push_back(EncodeR(Funct::kSll, 0, 0, 0, 0));
      return;
    }

    // --- pseudo-ops ---
    if (m == "move") {
      out.push_back(EncodeR(Funct::kAddu, Reg(i, 0), Reg(i, 1), 0));
      return;
    }
    if (m == "neg") {
      out.push_back(EncodeR(Funct::kSub, Reg(i, 0), 0, Reg(i, 1)));
      return;
    }
    if (m == "not") {
      out.push_back(EncodeR(Funct::kNor, Reg(i, 0), Reg(i, 1), 0));
      return;
    }
    if (m == "subi") {
      const std::int64_t v = Imm(i, 2);
      if (v < -32767 || v > 32768) Error(i, "immediate out of range");
      out.push_back(EncodeI(Opcode::kAddiu, Reg(i, 0), Reg(i, 1),
                            static_cast<std::uint16_t>(-v)));
      return;
    }
    if (m == "li") {
      const unsigned rd = Reg(i, 0);
      const std::int64_t v = Imm(i, 1);
      if (v < INT32_MIN || v > static_cast<std::int64_t>(UINT32_MAX)) {
        Error(i, "li immediate out of 32-bit range");
      }
      if (v >= -32768 && v <= 32767) {
        out.push_back(EncodeI(Opcode::kAddiu, rd, 0,
                              static_cast<std::uint16_t>(v)));
      } else if ((v & 0xFFFF) == 0 && v >= 0) {
        out.push_back(EncodeI(Opcode::kLui, rd, 0,
                              static_cast<std::uint16_t>(v >> 16)));
      } else {
        const auto uv = static_cast<std::uint32_t>(v);
        out.push_back(EncodeI(Opcode::kLui, rd, 0,
                              static_cast<std::uint16_t>(uv >> 16)));
        out.push_back(EncodeI(Opcode::kOri, rd, rd,
                              static_cast<std::uint16_t>(uv & 0xFFFF)));
      }
      return;
    }
    if (m == "la") {
      const unsigned rd = Reg(i, 0);
      if (i.operands.size() < 2) Error(i, "missing label");
      const std::uint32_t value = LabelValue(i, i.operands[1]);
      out.push_back(EncodeI(Opcode::kLui, rd, 0,
                            static_cast<std::uint16_t>(value >> 16)));
      out.push_back(EncodeI(Opcode::kOri, rd, rd,
                            static_cast<std::uint16_t>(value & 0xFFFF)));
      return;
    }
    if (m == "mul" || m == "divq" || m == "rem") {
      const unsigned rd = Reg(i, 0);
      const Funct f = m == "mul" ? Funct::kMult : Funct::kDiv;
      out.push_back(EncodeR(f, 0, Reg(i, 1), Reg(i, 2)));
      out.push_back(EncodeR(m == "rem" ? Funct::kMfhi : Funct::kMflo,
                            rd, 0, 0));
      return;
    }

    Error(i, "unknown mnemonic");
  }

  const Segments& segments_;
};

}  // namespace

AssembledProgram Assemble(const std::string& source) {
  LayoutPass layout;
  Segments segments = layout.Run(source);
  const auto fixups = layout.TakeFixups();

  AssembledProgram program;
  program.symbols = segments.symbols;
  program.data = segments.data;

  // Resolve .word label fixups.
  for (const auto& fixup : fixups) {
    std::string name = fixup.label;
    const auto it = segments.symbols.find(name);
    if (it == segments.symbols.end()) {
      throw AssemblyError(fixup.line, "undefined label '" + name +
                                          "' in .word");
    }
    const std::uint32_t value = it->second;
    for (unsigned b = 0; b < 4; ++b) {
      program.data[fixup.offset + b] =
          static_cast<std::uint8_t>((value >> (8 * b)) & 0xFF);
    }
  }

  EncodePass encode(segments);
  program.text = encode.Run();
  return program;
}

}  // namespace abenc::sim
