#include "service/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "channel/fault_models.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "service/service.h"
#include "verify/stream_gen.h"

namespace abenc::service {
namespace {

using Clock = std::chrono::steady_clock;

/// The codec rotation: the paper's main history and stateless codes,
/// including a redundant-line code (bus-invert) and a dual multiplexed
/// code, so the soak exercises every frame geometry the channel knows.
/// Exposed via SoakCodecPalette().
const char* const kCodecPalette[] = {"t0",      "gray",   "bus-invert",
                                     "inc-xor", "offset", "dual-t0-bi",
                                     "adaptive"};

/// The renegotiation rotation: the same palette the network policy
/// proposes from, so the in-process soak and the wire soak pin switches
/// across identical geometry transitions (including the redundant-line
/// bus-invert and the multiplexed dual code).
const char* const kSwitchPalette[] = {"binary", "gray", "t0", "bus-invert",
                                      "dual-t0-bi"};

/// A planned mid-stream codec switch: issued once the client has
/// submitted `at` accesses. `at == stream length` pins the switch to the
/// exact end of the stream (the boundary the end-of-stream apply fixed).
struct PlannedSwitch {
  std::size_t at = 0;
  std::string codec_name;
};

/// Everything about one synthetic session, fixed up front so the serial
/// reference can be recomputed after the run from the same plan.
/// Mutable progress fields are owned by exactly one client thread (plans
/// are sliced by index), so they need no synchronisation.
struct SessionPlan {
  std::size_t index = 0;
  std::uint64_t id = 0;  // assigned at OpenSession
  std::string codec_name;
  std::vector<BusAccess> stream;
  SessionConfig config;
  std::size_t submitted = 0;        // client progress, in accesses
  std::uint64_t backoff_us = 100;   // client-side rejection backoff
  bool columnar = false;            // submit via zero-copy SubmitColumns
  std::vector<PlannedSwitch> switch_plan;   // ascending by `at`
  std::size_t next_switch = 0;
  std::vector<CodecSwitchPoint> acked;      // ok() outcomes, in order
  std::uint64_t refusals = 0;               // tolerated clean refusals
  std::vector<std::string> renegotiate_failures;  // hard failures
};

/// Deterministic fault palette for one session; `salt` tells apart the
/// draws so one MixSeed chain yields independent choices.
std::uint64_t Draw(std::uint64_t seed, std::uint64_t salt) {
  return verify::MixSeed(seed + 0x9E3779B97F4A7C15ULL * (salt + 1));
}

std::function<void(BusChannel&)> MakeFaultInstaller(std::uint64_t seed,
                                                    std::size_t length) {
  const std::uint64_t kind = Draw(seed, 1) % 4;
  const std::size_t cycle = Draw(seed, 2) % std::max<std::size_t>(length, 1);
  const std::uint64_t line_pick = Draw(seed, 3);
  const bool stuck_value = (Draw(seed, 4) & 1) != 0;
  switch (kind) {
    case 0:
      return [cycle, line_pick](BusChannel& channel) {
        channel.AddFault(std::make_unique<SingleUpsetFault>(
            cycle, static_cast<unsigned>(line_pick % channel.total_lines())));
      };
    case 1:
      return [cycle, line_pick](BusChannel& channel) {
        const unsigned total = channel.total_lines();
        const unsigned span = std::min(2u, total);
        const unsigned first =
            static_cast<unsigned>(line_pick % (total - span + 1));
        channel.AddFault(
            std::make_unique<BurstFault>(cycle, first, span, 2));
      };
    case 2:
      return [seed](BusChannel& channel) {
        channel.AddFault(std::make_unique<RandomNoiseFault>(0.001, seed));
      };
    default:
      // A hard fault from mid-stream on: the case retries cannot heal,
      // exercising rung 3 (graceful degradation to binary).
      return [length, line_pick, stuck_value](BusChannel& channel) {
        channel.AddFault(std::make_unique<StuckAtFault>(
            static_cast<unsigned>(line_pick % channel.total_lines()),
            stuck_value, length / 2));
      };
  }
}

/// The stall-shard gate: the injected "wedged shard" blocks here until
/// the harness opens it after verification traffic has drained.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this]() { return open; });
  }
};

std::string Describe(const SessionPlan& plan, const char* what) {
  std::ostringstream out;
  out << "session " << plan.id << " (" << plan.codec_name << ", "
      << plan.stream.size() << " accesses): " << what;
  return out.str();
}

}  // namespace

std::span<const char* const> SoakCodecPalette() {
  return std::span<const char* const>(kCodecPalette,
                                      std::size(kCodecPalette));
}

std::function<void(BusChannel&)> PlanSoakFault(std::uint64_t seed,
                                               std::size_t length) {
  return MakeFaultInstaller(seed, length);
}

SoakOutcome RunSoak(const SoakOptions& options) {
  SoakOutcome outcome;
  const auto start = Clock::now();
  const bool budgeted = options.time_budget_s > 0.0;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      budgeted ? options.time_budget_s : 0.0));
  auto out_of_time = [&]() {
    return budgeted && Clock::now() >= deadline;
  };

  ServiceConfig service_config;
  service_config.shards = std::max(1u, options.shards);
  service_config.parallelism =
      options.stall_shard ? std::max(2u, options.parallelism)
                          : std::max(1u, options.parallelism);
  service_config.idle_evict_steps = options.idle_evict_steps;
  // A patient watchdog: a wedged shard is still failed over within ~1s,
  // but a shard that is merely starved for CPU (oversubscribed CI
  // machines, sanitizer slowdowns) gets time to advance its heartbeat
  // before being declared stuck.
  service_config.watchdog_interval = std::chrono::milliseconds(100);
  service_config.watchdog_stuck_strikes = 10;
  EncodingService service(service_config);

  auto gate = std::make_shared<Gate>();
  if (options.stall_shard) {
    service.shard(0).SetStallHook([gate]() { gate->Wait(); });
  }

  // Plan and admit every session up front, so all of them are live
  // simultaneously before the first client thread starts submitting.
  const std::size_t palette_size = std::size(kCodecPalette);
  const std::vector<verify::StreamFamily> families =
      verify::AllStreamFamilies();
  std::vector<SessionPlan> plans(options.sessions);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    SessionPlan& plan = plans[i];
    plan.index = i;
    plan.codec_name =
        options.codec.empty() ? kCodecPalette[i % palette_size] : options.codec;
    const std::uint64_t sub_seed =
        verify::MixSeed(options.seed + 0x9E3779B97F4A7C15ULL * (i + 1));
    plan.stream = verify::GenerateStream(
        families[i % families.size()], sub_seed, options.length,
        plan.config.codec_options.width, plan.config.codec_options.stride);
    plan.config.codec_name = plan.codec_name;
    plan.config.queue_capacity = options.queue_capacity;
    plan.config.slowdown_watermark = options.slowdown_watermark;
    plan.config.access_budget = options.access_budget;
    const bool faulted =
        options.fault_fraction > 0.0 &&
        static_cast<double>(Draw(sub_seed, 0) % 10000) <
            options.fault_fraction * 10000.0;
    if (faulted) {
      plan.config.fault_installer =
          MakeFaultInstaller(sub_seed, options.length);
      // Rotate the protection layer: SECDED sessions exercise in-line
      // correction (rung 1), parity/unprotected sessions push the same
      // faults into retry-resync (rung 2) and, for hard faults,
      // degradation to binary (rung 3).
      switch (Draw(sub_seed, 5) % 3) {
        case 0: plan.config.protection = Protection::kSecded; break;
        case 1: plan.config.protection = Protection::kParity; break;
        default: plan.config.protection = Protection::kNone; break;
      }
    }
    plan.columnar =
        options.columnar_fraction > 0.0 &&
        static_cast<double>(Draw(sub_seed, 6) % 10000) <
            options.columnar_fraction * 10000.0;
    const bool renegotiates =
        options.renegotiate_fraction > 0.0 &&
        static_cast<double>(Draw(sub_seed, 7) % 10000) <
            options.renegotiate_fraction * 10000.0;
    if (renegotiates && !plan.stream.empty()) {
      const std::size_t length = plan.stream.size();
      const std::size_t palette =
          std::size(kSwitchPalette);
      plan.switch_plan.push_back(
          {length / 4, kSwitchPalette[Draw(sub_seed, 8) % palette]});
      plan.switch_plan.push_back(
          {(3 * length) / 5, kSwitchPalette[Draw(sub_seed, 9) % palette]});
      if (Draw(sub_seed, 10) % 2 == 0) {
        // Pin one switch to the exact end of the stream: the schedule
        // must still apply it even though no further access arrives.
        plan.switch_plan.push_back(
            {length, kSwitchPalette[Draw(sub_seed, 11) % palette]});
      }
    }
    plan.id = service.OpenSession(plan.config);
  }

  // Concurrent clients: each owns a slice of the sessions and pushes its
  // streams through the admission path, pacing on kSlowDown and backing
  // off-and-retrying on kRejected. No access is ever dropped — the bit
  // identity checked below would catch it if one were.
  std::atomic<std::uint64_t> rejected_total{0};
  const unsigned clients = std::max(1u, options.clients);
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c]() {
      bool work_left = true;
      while (work_left && !out_of_time()) {
        work_left = false;
        for (std::size_t i = c; i < plans.size(); i += clients) {
          SessionPlan& plan = plans[i];
          // Issue every switch whose submission threshold has been
          // crossed — including one pinned past the final access, which
          // this pass reaches because the submitting pass before it left
          // work_left set.
          while (plan.next_switch < plan.switch_plan.size() &&
                 plan.submitted >= plan.switch_plan[plan.next_switch].at) {
            const PlannedSwitch& planned =
                plan.switch_plan[plan.next_switch];
            const RenegotiateOutcome outcome =
                service.Renegotiate(plan.id, planned.codec_name);
            if (outcome.ok()) {
              plan.acked.push_back(
                  {outcome.switch_index, outcome.codec_name});
            } else if (outcome.status ==
                       RenegotiateStatus::kRefusedBadCodec) {
              // The palette is all factory codecs — a bad-codec refusal
              // here means validation itself regressed.
              plan.renegotiate_failures.push_back(
                  Describe(plan, "renegotiation refused as bad codec"));
            } else {
              ++plan.refusals;
            }
            ++plan.next_switch;
          }
          if (plan.submitted >= plan.stream.size()) continue;
          work_left = true;
          const std::size_t n = std::min(
              options.chunk == 0 ? std::size_t{64} : options.chunk,
              plan.stream.size() - plan.submitted);
          Admission admission;
          if (plan.columnar) {
            ColumnBatch batch;
            batch.addresses.reserve(n);
            batch.sel.reserve(n);
            for (std::size_t j = 0; j < n; ++j) {
              const BusAccess& access = plan.stream[plan.submitted + j];
              batch.addresses.push_back(access.address);
              batch.sel.push_back(access.sel ? 1 : 0);
            }
            admission = service.SubmitColumns(plan.id, std::move(batch));
          } else {
            admission = service.Submit(
                plan.id,
                std::span<const BusAccess>(plan.stream)
                    .subspan(plan.submitted, n));
          }
          switch (admission) {
            case Admission::kAccepted:
              plan.submitted += n;
              plan.backoff_us = 100;
              break;
            case Admission::kSlowDown:
              plan.submitted += n;
              plan.backoff_us = 100;
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              break;
            case Admission::kRejected:
              rejected_total.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(
                  std::chrono::microseconds(plan.backoff_us));
              plan.backoff_us = std::min<std::uint64_t>(
                  plan.backoff_us * 2, 5000);
              break;
            case Admission::kClosed:
              // Never closed while submitting; surface as a failure by
              // leaving the stream unfinished.
              plan.submitted = plan.stream.size();
              break;
          }
        }
      }
    });
  }
  for (std::thread& thread : client_threads) thread.join();

  for (const SessionPlan& plan : plans) service.CloseSession(plan.id);

  const bool drained = service.Drain(
      budgeted ? std::chrono::duration_cast<std::chrono::milliseconds>(
                     deadline - Clock::now())
               : std::chrono::milliseconds(60000));

  if (options.stall_shard) {
    // The wedged shard must have been failed over while traffic was
    // live; only then open the gate so its driver can exit for Stop().
    if (service.failovers() == 0) {
      outcome.failures.push_back(
          "stall-shard: watchdog never failed over the wedged shard");
    }
    gate->Open();
  }
  outcome.failovers = service.failovers();

  if (!drained) {
    outcome.timed_out = true;
    service.Stop();
    outcome.elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    return outcome;
  }

  service.Stop();

  // Serial verification: every session against EvaluateWithSchedule on
  // the identical stream (replaying the acked switch schedule; an empty
  // schedule degenerates to EvaluateWithResets), faults and scheduling
  // notwithstanding.
  outcome.sessions = plans.size();
  outcome.rejected_batches =
      rejected_total.load(std::memory_order_relaxed);
  for (const SessionPlan& plan : plans) {
    const SessionReport report = service.Report(plan.id);
    outcome.accesses += report.result.stream_length;
    outcome.recovered_transfers += report.transport.recovered;
    outcome.corrected_transfers += report.transport.corrected;
    outcome.degraded_transfers += report.transport.degraded_deliveries;
    if (report.degraded) ++outcome.degraded_sessions;
    if (!report.reset_points.empty()) ++outcome.evicted_sessions;
    if (plan.columnar) ++outcome.columnar_sessions;
    outcome.renegotiations += plan.acked.size();
    outcome.renegotiate_refusals += plan.refusals;
    for (const std::string& failure : plan.renegotiate_failures) {
      outcome.failures.push_back(failure);
    }

    if (report.result.stream_length != plan.stream.size()) {
      outcome.failures.push_back(Describe(plan, "stream length mismatch"));
      continue;
    }
    // Every switch the session acked must have applied — in order, at
    // its pinned index — and nothing else may have applied. A mismatch
    // here means an acked switch was dropped (or applied off-index),
    // which would desynchronise any decoder replaying the schedule.
    if (report.renegotiations != plan.acked) {
      outcome.failures.push_back(Describe(
          plan, "applied switch schedule != the acked renegotiations"));
      continue;
    }
    const EvalResult expected = EvaluateWithSchedule(
        plan.codec_name, plan.config.codec_options, plan.stream,
        report.renegotiations, report.reset_points,
        plan.config.stride_for_stats);
    if (report.result.transitions != expected.transitions) {
      outcome.failures.push_back(Describe(plan, "transition count diverged"));
    }
    if (report.result.peak_transitions != expected.peak_transitions) {
      outcome.failures.push_back(Describe(plan, "peak transitions diverged"));
    }
    if (report.result.per_line != expected.per_line) {
      outcome.failures.push_back(
          Describe(plan, "per-line histogram diverged"));
    }
    if (report.result.in_sequence_percent != expected.in_sequence_percent) {
      outcome.failures.push_back(
          Describe(plan, "in-sequence percentage diverged"));
    }
    const TransportCounters& t = report.transport;
    if (t.clean + t.corrected + t.recovered + t.degraded_deliveries !=
        t.transfers) {
      outcome.failures.push_back(Describe(
          plan, "transport reconciliation failed (a delivery outcome "
                "was lost — silent corruption)"));
    }
    if (t.transfers != plan.stream.size()) {
      outcome.failures.push_back(
          Describe(plan, "transfer count != stream length"));
    }
    if (report.peak_queue_depth > plan.config.queue_capacity) {
      outcome.failures.push_back(
          Describe(plan, "queue exceeded its configured capacity"));
    }
  }

  outcome.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (budgeted && outcome.elapsed_s > options.time_budget_s) {
    outcome.timed_out = true;
  }
  return outcome;
}

}  // namespace abenc::service
