#include "obs/metrics_json.h"

namespace abenc::obs {

JsonValue MetricsToJson(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snapshot = registry.Snap();

  JsonValue document = JsonValue::MakeObject();
  document.Set("schema", "abenc.metrics.v1");

  JsonValue counters = JsonValue::MakeArray();
  for (const auto& sample : snapshot.counters) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", sample.name);
    entry.Set("value", static_cast<double>(sample.value));
    counters.Append(std::move(entry));
  }
  document.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::MakeArray();
  for (const auto& sample : snapshot.gauges) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", sample.name);
    entry.Set("value", sample.value);
    gauges.Append(std::move(entry));
  }
  document.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::MakeArray();
  for (const auto& sample : snapshot.histograms) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", sample.name);
    entry.Set("count", static_cast<double>(sample.count));
    entry.Set("sum", sample.sum);
    JsonValue buckets = JsonValue::MakeArray();
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      JsonValue bucket = JsonValue::MakeObject();
      // The trailing bucket has no finite edge: le is null for +inf.
      bucket.Set("le", i < sample.upper_bounds.size()
                           ? JsonValue(sample.upper_bounds[i])
                           : JsonValue());
      bucket.Set("count", static_cast<double>(sample.buckets[i]));
      buckets.Append(std::move(bucket));
    }
    entry.Set("buckets", std::move(buckets));
    histograms.Append(std::move(entry));
  }
  document.Set("histograms", std::move(histograms));
  return document;
}

void WriteMetricsFile(const std::string& path,
                      const MetricsRegistry& registry) {
  WriteJsonFile(path, MetricsToJson(registry));
}

}  // namespace abenc::obs
