// Guards the codec registry against drift: every codec header under
// src/core must be reachable through codec_factory, and every factory
// name must be constructible and backed by a header. A codec added as a
// header but never registered (or registered but deleted) fails here
// instead of silently escaping the conformance suite in src/verify.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/codec_factory.h"

#ifndef ABENC_SOURCE_DIR
#error "factory_coverage_test requires the ABENC_SOURCE_DIR definition"
#endif

namespace abenc {
namespace {

/// "dual_t0bi_codec.h" -> "dualt0bi"; "dual-t0-bi" -> "dualt0bi".
/// Factory names and header stems use different separators, so coverage
/// is matched on the separator-free form.
std::string Normalize(std::string text) {
  std::erase_if(text, [](char c) { return c == '_' || c == '-'; });
  return text;
}

std::vector<std::string> CodecHeaderStems() {
  const std::filesystem::path core =
      std::filesystem::path(ABENC_SOURCE_DIR) / "src" / "core";
  std::vector<std::string> stems;
  for (const auto& entry : std::filesystem::directory_iterator(core)) {
    const std::string filename = entry.path().filename().string();
    constexpr std::string_view kSuffix = "_codec.h";
    if (filename.size() <= kSuffix.size() ||
        !filename.ends_with(kSuffix)) {
      continue;
    }
    stems.push_back(
        Normalize(filename.substr(0, filename.size() - kSuffix.size())));
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

TEST(FactoryCoverageTest, FindsTheCodecHeaders) {
  // The repo ships 13 codec headers today; the test must be looking at
  // the real tree, not an empty directory.
  EXPECT_GE(CodecHeaderStems().size(), 13u);
}

TEST(FactoryCoverageTest, EveryHeaderIsRegisteredInTheFactory) {
  std::vector<std::string> normalized_names;
  for (const std::string& name : AllCodecNames()) {
    normalized_names.push_back(Normalize(name));
  }
  for (const std::string& stem : CodecHeaderStems()) {
    const bool registered = std::any_of(
        normalized_names.begin(), normalized_names.end(),
        [&](const std::string& name) { return name.starts_with(stem); });
    EXPECT_TRUE(registered)
        << "src/core/" << stem << "_codec.h has no factory registration; "
        << "add it to MakeCodec and AllCodecNames";
  }
}

TEST(FactoryCoverageTest, EveryFactoryNameIsConstructibleAndBacked) {
  const std::vector<std::string> stems = CodecHeaderStems();
  for (const std::string& name : AllCodecNames()) {
    CodecPtr codec;
    ASSERT_NO_THROW(codec = MakeCodec(name))
        << name << " is listed but not constructible with defaults";
    ASSERT_NE(codec, nullptr) << name;
    EXPECT_EQ(codec->width(), 32u) << name;
    EXPECT_FALSE(codec->name().empty()) << name;

    const std::string normalized = Normalize(name);
    const bool backed = std::any_of(
        stems.begin(), stems.end(), [&](const std::string& stem) {
          return normalized.starts_with(stem);
        });
    EXPECT_TRUE(backed)
        << name << " has no src/core/*_codec.h backing header";
  }
}

TEST(FactoryCoverageTest, EveryFactoryCodecRunsTheBatchedPaths) {
  // A short mixed-SEL stream that leaves reset, revisits an address and
  // jumps across the width mask — enough to exercise state in every
  // registered code without knowing its mechanism.
  std::vector<BusAccess> stream;
  for (std::size_t i = 0; i < 24; ++i) {
    const Word address =
        (i % 3 == 2) ? (0xFFFF0000u + 16 * i) : (0x1000 + 4 * i);
    stream.push_back(BusAccess{address, i % 5 != 0});
  }
  std::vector<Word> addresses;
  std::vector<std::uint8_t> sel;
  for (const BusAccess& access : stream) {
    addresses.push_back(access.address);
    sel.push_back(access.sel ? 1 : 0);
  }

  for (const std::string& name : AllCodecNames()) {
    // Reference wire from the scalar path, decoded back in lockstep.
    const CodecPtr scalar = MakeCodec(name);
    const Word mask = LowMask(scalar->width());
    std::vector<BusState> expected;
    for (const BusAccess& access : stream) {
      expected.push_back(scalar->Encode(access.address, access.sel));
    }

    const CodecPtr blocked = MakeCodec(name);
    std::vector<BusState> block_out(stream.size());
    blocked->EncodeBlock(std::span<const BusAccess>(stream),
                         std::span<BusState>(block_out));
    EXPECT_EQ(block_out, expected)
        << name << ": EncodeBlock diverged from scalar Encode";

    const CodecPtr columnar = MakeCodec(name);
    std::vector<BusState> column_out(stream.size());
    columnar->EncodeColumns(addresses.data(), sel.data(), stream.size(),
                            std::span<BusState>(column_out));
    EXPECT_EQ(column_out, expected)
        << name << ": EncodeColumns diverged from scalar Encode";

    // And the wire still decodes: the batched paths must leave the
    // encoder in the same state a scalar decoder expects.
    const CodecPtr decoder = MakeCodec(name);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ASSERT_EQ(decoder->Decode(block_out[i], stream[i].sel),
                stream[i].address & mask)
          << name << ": batched wire failed to decode at access " << i;
    }
  }
}

TEST(FactoryCoverageTest, NamesAreUniqueAndSubsetsConsistent) {
  const std::vector<std::string> all = AllCodecNames();
  const std::set<std::string> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size()) << "duplicate factory names";

  for (const std::string& name : ExistingCodecNames()) {
    EXPECT_TRUE(unique.contains(name))
        << "existing codec '" << name << "' missing from AllCodecNames";
  }
  for (const std::string& name : MixedCodecNames()) {
    EXPECT_TRUE(unique.contains(name))
        << "mixed codec '" << name << "' missing from AllCodecNames";
  }
}

TEST(FactoryCoverageTest, UnknownNamesThrow) {
  EXPECT_THROW(MakeCodec("no-such-codec"), CodecConfigError);
  EXPECT_THROW(MakeCodec(""), CodecConfigError);
  // Factory names are exact: near-misses must not silently alias.
  EXPECT_THROW(MakeCodec("T0"), CodecConfigError);
  EXPECT_THROW(MakeCodec("gray_word"), CodecConfigError);
}

}  // namespace
}  // namespace abenc
