// INC-XOR code (Ramprasad/Shanbhag/Hajj style) — irredundant extension.
#pragma once

#include "core/codec.h"
#include "core/simd/kernel_dispatch.h"

namespace abenc {

/// Transition-signalling variant of T0 that needs no redundant line: the
/// encoder toggles exactly the bus lines where the new address differs from
/// the *predicted* address b(t-1) + S,
///
///   B(t) = B(t-1) xor ( b(t) xor (b(t-1) + S) ),
///
/// so a perfectly sequential stream produces zero transitions, and an
/// out-of-sequence address costs only the Hamming distance to the
/// prediction. The decoder mirrors the recurrence:
///
///   b(t) = ( B(t) xor B(t-1) ) xor ( b(t-1) + S ).
class IncXorCodec final : public Codec {
 public:
  explicit IncXorCodec(unsigned width, Word stride = 4)
      : Codec(width), stride_(stride) {
    if (!IsPowerOfTwo(stride)) {
      throw CodecConfigError("INC-XOR stride must be a power of two");
    }
  }

  std::string name() const override { return "inc-xor"; }
  std::string display_name() const override { return "INC-XOR"; }
  unsigned redundant_lines() const override { return 0; }

  BusState Encode(Word address, bool /*sel*/) override {
    const Word b = Mask(address);
    const Word prediction = Mask(enc_prev_addr_ + stride_);
    enc_prev_bus_ = Mask(enc_prev_bus_ ^ (b ^ prediction));
    enc_prev_addr_ = b;
    return BusState{enc_prev_bus_, 0};
  }

  // Devirtualized block kernel, routed through the active SIMD backend
  // (the AVX2 table turns the running XOR into an in-register
  // prefix-XOR); the encoder registers carry across calls.
  void EncodeBlock(std::span<const BusAccess> in,
                   std::span<BusState> out) override {
    if (in.empty()) return;
    simd::ActiveKernels().inc_xor(simd::ViewAddresses(in.data()), in.size(),
                                  LowMask(width()), stride_, &enc_prev_addr_,
                                  &enc_prev_bus_, out.data());
  }
  void EncodeColumns(const Word* addresses, const std::uint8_t* /*sel*/,
                     std::size_t n, std::span<BusState> out) override {
    if (n == 0) return;
    simd::ActiveKernels().inc_xor(simd::AddressView{addresses, 1}, n,
                                  LowMask(width()), stride_, &enc_prev_addr_,
                                  &enc_prev_bus_, out.data());
  }

  Word Decode(const BusState& bus, bool /*sel*/) override {
    const Word prediction = Mask(dec_prev_addr_ + stride_);
    const Word b = Mask((Mask(bus.lines) ^ dec_prev_bus_) ^ prediction);
    dec_prev_bus_ = Mask(bus.lines);
    dec_prev_addr_ = b;
    return b;
  }

  void Reset() override {
    enc_prev_addr_ = dec_prev_addr_ = 0;
    enc_prev_bus_ = dec_prev_bus_ = 0;
  }

  Word stride() const { return stride_; }

 private:
  Word stride_;
  Word enc_prev_addr_ = 0;
  Word enc_prev_bus_ = 0;
  Word dec_prev_addr_ = 0;
  Word dec_prev_bus_ = 0;
};

}  // namespace abenc
