#include "sim/disassembler.h"

#include <iomanip>
#include <optional>
#include <set>
#include <sstream>

namespace abenc::sim {
namespace {

std::string Hex(std::uint32_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

std::string Label(std::uint32_t address) {
  std::ostringstream out;
  out << "L_" << std::hex << address;
  return out.str();
}

/// Branch target of an I-type branch at `pc`, if the word is a branch.
std::optional<std::uint32_t> BranchTarget(Instruction i, std::uint32_t pc) {
  switch (i.opcode()) {
    case Opcode::kRegImm:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlez:
    case Opcode::kBgtz:
      return pc + 4 + (static_cast<std::uint32_t>(i.simmediate()) << 2);
    default:
      return std::nullopt;
  }
}

/// Jump target of a J-type word at `pc`, if any.
std::optional<std::uint32_t> JumpTarget(Instruction i, std::uint32_t pc) {
  if (i.opcode() == Opcode::kJ || i.opcode() == Opcode::kJal) {
    return (pc & 0xF0000000u) | (i.target() << 2);
  }
  return std::nullopt;
}

/// Core renderer; control-flow targets go through `target_name`.
template <typename TargetName>
std::string Render(Instruction i, std::uint32_t pc,
                   TargetName&& target_name) {
  std::ostringstream out;
  const auto rd = [&] { return RegisterName(i.rd()); };
  const auto rs = [&] { return RegisterName(i.rs()); };
  const auto rt = [&] { return RegisterName(i.rt()); };
  const auto simm = [&] { return std::to_string(i.simmediate()); };
  const auto uimm = [&] { return std::to_string(i.immediate()); };
  const auto mem = [&] {
    return std::to_string(i.simmediate()) + "(" + rs() + ")";
  };

  switch (i.opcode()) {
    case Opcode::kSpecial:
      switch (i.funct()) {
        case Funct::kSll:
          out << "sll " << rd() << ", " << rt() << ", " << i.shamt();
          return out.str();
        case Funct::kSrl:
          out << "srl " << rd() << ", " << rt() << ", " << i.shamt();
          return out.str();
        case Funct::kSra:
          out << "sra " << rd() << ", " << rt() << ", " << i.shamt();
          return out.str();
        case Funct::kSllv:
          out << "sllv " << rd() << ", " << rt() << ", " << rs();
          return out.str();
        case Funct::kSrlv:
          out << "srlv " << rd() << ", " << rt() << ", " << rs();
          return out.str();
        case Funct::kSrav:
          out << "srav " << rd() << ", " << rt() << ", " << rs();
          return out.str();
        case Funct::kJr: return "jr " + rs();
        case Funct::kJalr: return "jalr " + rs();
        case Funct::kSyscall: return "syscall";
        case Funct::kBreak: return "break";
        case Funct::kMfhi: return "mfhi " + rd();
        case Funct::kMflo: return "mflo " + rd();
        case Funct::kMult: return "mult " + rs() + ", " + rt();
        case Funct::kMultu: return "multu " + rs() + ", " + rt();
        case Funct::kDiv: return "div " + rs() + ", " + rt();
        case Funct::kDivu: return "divu " + rs() + ", " + rt();
        case Funct::kAdd:
          return "add " + rd() + ", " + rs() + ", " + rt();
        case Funct::kAddu:
          return "addu " + rd() + ", " + rs() + ", " + rt();
        case Funct::kSub:
          return "sub " + rd() + ", " + rs() + ", " + rt();
        case Funct::kSubu:
          return "subu " + rd() + ", " + rs() + ", " + rt();
        case Funct::kAnd:
          return "and " + rd() + ", " + rs() + ", " + rt();
        case Funct::kOr: return "or " + rd() + ", " + rs() + ", " + rt();
        case Funct::kXor:
          return "xor " + rd() + ", " + rs() + ", " + rt();
        case Funct::kNor:
          return "nor " + rd() + ", " + rs() + ", " + rt();
        case Funct::kSlt:
          return "slt " + rd() + ", " + rs() + ", " + rt();
        case Funct::kSltu:
          return "sltu " + rd() + ", " + rs() + ", " + rt();
        default:
          return ".word " + Hex(i.raw) + "  # unknown funct";
      }
    case Opcode::kJ: return "j " + target_name(*JumpTarget(i, pc));
    case Opcode::kJal: return "jal " + target_name(*JumpTarget(i, pc));
    case Opcode::kBeq:
      return "beq " + rs() + ", " + rt() + ", " +
             target_name(*BranchTarget(i, pc));
    case Opcode::kBne:
      return "bne " + rs() + ", " + rt() + ", " +
             target_name(*BranchTarget(i, pc));
    case Opcode::kRegImm:
      return (i.rt() == 0 ? "bltz " : "bgez ") + rs() + ", " +
             target_name(*BranchTarget(i, pc));
    case Opcode::kBlez:
      return "blez " + rs() + ", " + target_name(*BranchTarget(i, pc));
    case Opcode::kBgtz:
      return "bgtz " + rs() + ", " + target_name(*BranchTarget(i, pc));
    case Opcode::kAddi: return "addi " + rt() + ", " + rs() + ", " + simm();
    case Opcode::kAddiu:
      return "addiu " + rt() + ", " + rs() + ", " + simm();
    case Opcode::kSlti: return "slti " + rt() + ", " + rs() + ", " + simm();
    case Opcode::kSltiu:
      return "sltiu " + rt() + ", " + rs() + ", " + simm();
    case Opcode::kAndi: return "andi " + rt() + ", " + rs() + ", " + uimm();
    case Opcode::kOri: return "ori " + rt() + ", " + rs() + ", " + uimm();
    case Opcode::kXori: return "xori " + rt() + ", " + rs() + ", " + uimm();
    case Opcode::kLui: return "lui " + rt() + ", " + uimm();
    case Opcode::kLb: return "lb " + rt() + ", " + mem();
    case Opcode::kLh: return "lh " + rt() + ", " + mem();
    case Opcode::kLw: return "lw " + rt() + ", " + mem();
    case Opcode::kLbu: return "lbu " + rt() + ", " + mem();
    case Opcode::kLhu: return "lhu " + rt() + ", " + mem();
    case Opcode::kSb: return "sb " + rt() + ", " + mem();
    case Opcode::kSh: return "sh " + rt() + ", " + mem();
    case Opcode::kSw: return "sw " + rt() + ", " + mem();
    default:
      return ".word " + Hex(i.raw) + "  # unknown opcode";
  }
}

}  // namespace

std::string Disassemble(Instruction instruction, std::uint32_t pc) {
  return Render(instruction, pc,
                [](std::uint32_t target) { return Hex(target); });
}

std::string DisassembleListing(const AssembledProgram& program) {
  std::ostringstream out;
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const auto pc =
        program.text_base + static_cast<std::uint32_t>(i * 4);
    out << Hex(pc) << ": " << std::setw(8) << std::setfill('0') << std::hex
        << program.text[i] << std::setfill(' ') << std::dec << "  "
        << Disassemble(Instruction{program.text[i]}, pc) << '\n';
  }
  return out.str();
}

std::string DisassembleProgram(const AssembledProgram& program) {
  // Pass 1: collect every control-flow target so it gets a label.
  std::set<std::uint32_t> targets;
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const auto pc =
        program.text_base + static_cast<std::uint32_t>(i * 4);
    const Instruction instr{program.text[i]};
    if (const auto t = BranchTarget(instr, pc)) targets.insert(*t);
    if (const auto t = JumpTarget(instr, pc)) targets.insert(*t);
  }

  std::ostringstream out;
  out << "        .text\n";
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const auto pc =
        program.text_base + static_cast<std::uint32_t>(i * 4);
    if (targets.contains(pc)) out << Label(pc) << ":\n";
    out << "        "
        << Render(Instruction{program.text[i]}, pc,
                  [](std::uint32_t target) { return Label(target); })
        << '\n';
  }
  // A target just past the last instruction (forward branch to the end).
  const auto end_pc =
      program.text_base + static_cast<std::uint32_t>(program.text.size() * 4);
  if (targets.contains(end_pc)) out << Label(end_pc) << ":\n";

  if (!program.data.empty()) {
    out << "        .data\n";
    for (std::size_t i = 0; i < program.data.size(); ++i) {
      if (i % 8 == 0) {
        out << (i == 0 ? "" : "\n") << "        .byte ";
      } else {
        out << ", ";
      }
      out << static_cast<unsigned>(program.data[i]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace abenc::sim
