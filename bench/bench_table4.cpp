// Table 4: existing encoding schemes (binary, T0, bus-invert) on the
// time-multiplexed instruction/data address bus of the nine benchmarks.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  abenc::bench::PrintExperimentalTable(
      "Table 4: Existing Encoding Schemes, Multiplexed Address Streams",
      abenc::bench::StreamKind::kMultiplexed, {"t0", "bus-invert"},
      abenc::bench::ParseBenchOptions(argc, argv));
  return 0;
}
