// The universal invariant suite: properties every Codec in the library
// must satisfy on *any* address stream. Each check constructs fresh
// codecs through an injectable factory hook, so the suite can be turned
// against a deliberately broken codec (the test-suite does exactly that
// to prove the harness catches injected bugs).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/codec_factory.h"
#include "core/stream_evaluator.h"

namespace abenc::verify {

/// How a property failed: the first stream index at which the invariant
/// broke (stream.size() when the failure is not tied to one access) and
/// a human-readable explanation.
struct PropertyFailure {
  std::size_t index = 0;
  std::string message;
};

/// Constructs the codec under test. Defaults to MakeCodec; tests swap in
/// wrappers that sabotage encode/decode to validate the harness itself.
using CodecFactoryFn =
    std::function<CodecPtr(const std::string&, const CodecOptions&)>;

/// The default factory hook (forwards to MakeCodec).
CodecFactoryFn DefaultCodecFactory();

/// decode(encode(b)) == b & mask on every access, driving one codec's
/// encoder and decoder ends in lockstep from reset.
std::optional<PropertyFailure> CheckRoundTrip(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Every encoded BusState stays inside the advertised geometry: data
/// lines within the width mask, redundant bits within redundant_lines()
/// (exactly zero redundant bits for irredundant codes), and the
/// geometry itself stable across the stream.
std::optional<PropertyFailure> CheckLineWidth(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Reset()/instance contract: re-encoding the stream after Reset()
/// reproduces the exact BusState sequence, and a second fresh instance
/// produces the same sequence as the first (no hidden global state).
std::optional<PropertyFailure> CheckResetReplay(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// StreamEvaluator consistency: Evaluate()'s transition total, peak and
/// per-line histogram agree with an independent recount of the encoded
/// states via TransitionsBetween, and the per-line histogram sums to the
/// total over exactly total_lines() entries.
std::optional<PropertyFailure> CheckTransitionAccounting(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Split encoder/decoder lockstep: a second instance that is only ever
/// driven through Decode() must reproduce every address the first
/// instance encodes. Round-trip decodes on the *same* object, so a
/// decoder that peeks at encoder-side state (updated by Encode) passes
/// it; here the two ends live in different objects, exactly like the
/// two ends of a real bus, so their codebooks must stay equal using
/// nothing but the wire states.
std::optional<PropertyFailure> CheckDecoderLockstep(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Batched/per-word lockstep: EvaluateBatched() must reproduce
/// Evaluate()'s EvalResult *exactly* — transitions, peak, per-line
/// histogram, stream length and in-sequence percentage — at every
/// chunk size, including degenerate (1), prime (7), sub-block (64) and
/// overlong (length + 1) chunkings. This is the bit-identity guarantee
/// that lets the experiment engine and the table benches run on the
/// devirtualized EncodeBlock kernels while the committed baselines stay
/// byte-identical.
std::optional<PropertyFailure> CheckBatchedIdentity(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Kernel-dispatch identity: for every SIMD backend the host supports
/// (scalar always, AVX2/NEON when compiled in and executable),
/// EvaluateBatched must reproduce the per-word Evaluate() result
/// exactly — over both a BusAccess span and the zero-copy columnar
/// path — at degenerate, sub-block and overlong chunk sizes. This is
/// the guarantee that lets ABENC_KERNEL pick any backend without
/// perturbing a single committed baseline bit.
std::optional<PropertyFailure> CheckKernelDispatchIdentity(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Decision-replay lockstep: the adaptive meta-codec's decoder must
/// replay the encoder's per-window decisions deterministically from the
/// wire alone. Drives two separate instances (one only encoding, one
/// only decoding) and then audits, beyond the decoded addresses: (a)
/// the wire at every logged switch boundary carries the address
/// verbatim with the ESC bit asserted, and (b) the two ends' decision
/// logs — boundary index, per-member window costs, chosen member,
/// switch flag — are identical entry by entry. The reported index is
/// the earliest offending access, so an injected protocol bug (stale
/// window statistics, delayed ESC) is caught at its exact boundary.
/// For codecs without a decision log the property degenerates to the
/// split-decoder lockstep check.
std::optional<PropertyFailure> CheckDecisionReplay(
    const std::string& codec_name, const CodecOptions& options,
    std::span<const BusAccess> stream, const CodecFactoryFn& factory);

/// Names of the universal properties, in a stable order:
/// "round-trip", "line-width", "reset-replay", "transition-accounting",
/// "decoder-lockstep", "batched-identity", "kernel-dispatch-identity",
/// "decision-replay".
std::vector<std::string> UniversalPropertyNames();

/// Dispatch by property name; throws std::invalid_argument for unknown
/// names.
std::optional<PropertyFailure> CheckUniversalProperty(
    const std::string& property, const std::string& codec_name,
    const CodecOptions& options, std::span<const BusAccess> stream,
    const CodecFactoryFn& factory);

}  // namespace abenc::verify
