file(REMOVE_RECURSE
  "CMakeFiles/bench_coupling.dir/bench_coupling.cpp.o"
  "CMakeFiles/bench_coupling.dir/bench_coupling.cpp.o.d"
  "bench_coupling"
  "bench_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
