#include "sim/isa.h"

#include <array>

namespace abenc::sim {

std::uint32_t EncodeR(Funct funct, unsigned rd, unsigned rs, unsigned rt,
                      unsigned shamt) {
  return (0u << 26) | ((rs & 31u) << 21) | ((rt & 31u) << 16) |
         ((rd & 31u) << 11) | ((shamt & 31u) << 6) |
         static_cast<std::uint32_t>(funct);
}

std::uint32_t EncodeI(Opcode opcode, unsigned rt, unsigned rs,
                      std::uint16_t immediate) {
  return (static_cast<std::uint32_t>(opcode) << 26) | ((rs & 31u) << 21) |
         ((rt & 31u) << 16) | immediate;
}

std::uint32_t EncodeJ(Opcode opcode, std::uint32_t target) {
  return (static_cast<std::uint32_t>(opcode) << 26) | (target & 0x03FFFFFFu);
}

namespace {

constexpr std::array<const char*, 32> kRegisterNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

}  // namespace

std::optional<unsigned> ParseRegister(const std::string& name) {
  if (name.size() < 2 || name[0] != '$') return std::nullopt;
  for (unsigned i = 0; i < kRegisterNames.size(); ++i) {
    if (name == kRegisterNames[i]) return i;
  }
  // Numeric form $0 .. $31.
  unsigned value = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    value = value * 10 + static_cast<unsigned>(name[i] - '0');
  }
  if (value > 31) return std::nullopt;
  return value;
}

std::string RegisterName(unsigned index) {
  return index < 32 ? kRegisterNames[index] : "$?";
}

}  // namespace abenc::sim
