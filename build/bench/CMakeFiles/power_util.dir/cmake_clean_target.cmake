file(REMOVE_RECURSE
  "libpower_util.a"
)
