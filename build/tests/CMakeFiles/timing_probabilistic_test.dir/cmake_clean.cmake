file(REMOVE_RECURSE
  "CMakeFiles/timing_probabilistic_test.dir/timing_probabilistic_test.cpp.o"
  "CMakeFiles/timing_probabilistic_test.dir/timing_probabilistic_test.cpp.o.d"
  "timing_probabilistic_test"
  "timing_probabilistic_test.pdb"
  "timing_probabilistic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_probabilistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
