// Extension: what the always-on service layer costs over bare Evaluate().
//
// The same per-session streams are accounted twice — serially through
// Evaluate(), then through the full EncodingService stack (bounded
// queues, sharded drains, per-access channel delivery) — and the two
// throughputs are compared. Every session's EvalResult is asserted
// bit-identical to its serial reference before a number is printed, so
// the bench doubles as an end-to-end identity check of the service path.
//
// Flags: --parallelism N (service pool workers; 0 = hardware threads),
// --metrics PATH (export the run's abenc.metrics.v1 document). Other
// bench_util flags are accepted and ignored.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "core/codec_factory.h"
#include "core/stream_evaluator.h"
#include "service/service.h"
#include "verify/stream_gen.h"

namespace {

using namespace abenc;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSessions = 192;
constexpr std::size_t kLength = 3000;
constexpr std::uint64_t kSeed = 2024;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseBenchOptions(argc, argv);
  bench::MetricsSession metrics(options.metrics_path);

  const char* const codecs[] = {"t0", "bus-invert", "dual-t0-bi"};
  const std::vector<verify::StreamFamily> families =
      verify::AllStreamFamilies();

  std::vector<std::string> codec_of(kSessions);
  std::vector<std::vector<BusAccess>> streams(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    codec_of[i] = codecs[i % std::size(codecs)];
    streams[i] = verify::GenerateStream(
        families[i % families.size()],
        verify::MixSeed(kSeed + i), kLength, 32, 4);
  }

  // Serial baseline: Evaluate() per stream, one after another.
  const auto serial_start = Clock::now();
  std::vector<EvalResult> serial(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    CodecPtr codec = MakeCodec(codec_of[i]);
    serial[i] = Evaluate(*codec, streams[i]);
  }
  const double serial_s = Seconds(serial_start, Clock::now());

  // The service: same streams through sessions, shards and channels.
  const auto service_start = Clock::now();
  service::ServiceConfig service_config;
  service_config.shards = 4;
  service_config.parallelism = options.parallelism;
  service_config.enable_watchdog = false;  // nothing to wedge here
  service::EncodingService service(service_config);
  std::vector<std::uint64_t> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    service::SessionConfig config;
    config.codec_name = codec_of[i];
    ids[i] = service.OpenSession(config);
  }
  for (std::size_t offset = 0; offset < kLength; offset += 512) {
    const std::size_t n = std::min<std::size_t>(512, kLength - offset);
    for (std::size_t i = 0; i < kSessions; ++i) {
      while (service.Submit(ids[i],
                            std::span<const BusAccess>(streams[i])
                                .subspan(offset, n)) ==
             service::Admission::kRejected) {
      }
    }
  }
  if (!service.Drain(std::chrono::milliseconds(120000))) {
    std::cerr << "bench_service: service failed to drain\n";
    return 1;
  }
  service.Stop();
  const double service_s = Seconds(service_start, Clock::now());

  // Identity gate before any number is reported.
  for (std::size_t i = 0; i < kSessions; ++i) {
    const EvalResult got = service.Report(ids[i]).result;
    if (got.transitions != serial[i].transitions ||
        got.peak_transitions != serial[i].peak_transitions ||
        got.per_line != serial[i].per_line ||
        got.in_sequence_percent != serial[i].in_sequence_percent) {
      std::cerr << "bench_service: session " << ids[i]
                << " diverged from serial Evaluate()\n";
      return 1;
    }
  }

  const double total = static_cast<double>(kSessions * kLength);
  std::cout << "bench_service: " << kSessions << " sessions x " << kLength
            << " accesses (" << static_cast<std::size_t>(total)
            << " total), bit-identical to serial Evaluate\n"
            << std::fixed << std::setprecision(2)
            << "  serial Evaluate : " << serial_s * 1e3 << " ms  ("
            << total / serial_s / 1e6 << " M accesses/s)\n"
            << "  encoding service: " << service_s * 1e3 << " ms  ("
            << total / service_s / 1e6 << " M accesses/s)\n"
            << "  service overhead: " << service_s / serial_s
            << "x (queues + per-access channel delivery + sharding)\n";

  metrics.WriteIfEnabled();
  return 0;
}
