// Address-trace container shared by the simulator, the generators and the
// codecs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/stream_evaluator.h"
#include "core/types.h"

namespace abenc {

/// Kind of memory reference carried by a trace entry. On a multiplexed bus
/// this is what the SEL signal advertises.
enum class AccessKind : unsigned char { kInstruction, kData };

/// One reference of an address trace.
struct TraceEntry {
  Word address = 0;
  AccessKind kind = AccessKind::kInstruction;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// A stream of references as seen by one physical address bus.
class AddressTrace {
 public:
  AddressTrace() = default;
  explicit AddressTrace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void Append(Word address, AccessKind kind) {
    entries_.push_back(TraceEntry{address, kind});
  }
  void Append(const TraceEntry& entry) { entries_.push_back(entry); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& operator[](std::size_t i) const { return entries_[i]; }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  void Clear() { entries_.clear(); }
  void Reserve(std::size_t n) { entries_.reserve(n); }

  /// Keep only references of one kind (e.g. the dedicated instruction bus).
  AddressTrace Filtered(AccessKind kind) const {
    AddressTrace out(name_);
    for (const TraceEntry& e : entries_) {
      if (e.kind == kind) out.Append(e);
    }
    return out;
  }

  /// View as the BusAccess stream consumed by Evaluate(). SEL is asserted
  /// for instruction references, matching the MIPS bus interface.
  std::vector<BusAccess> ToBusAccesses() const {
    std::vector<BusAccess> out;
    out.reserve(entries_.size());
    for (const TraceEntry& e : entries_) {
      out.push_back(BusAccess{e.address, e.kind == AccessKind::kInstruction});
    }
    return out;
  }

  /// Plain address sequence (statistics helpers).
  std::vector<Word> Addresses() const {
    std::vector<Word> out;
    out.reserve(entries_.size());
    for (const TraceEntry& e : entries_) out.push_back(e.address);
    return out;
  }

 private:
  std::string name_;
  std::vector<TraceEntry> entries_;
};

/// Interleave an instruction trace and a data trace into the multiplexed
/// stream a shared address bus would carry. Entries are merged by their
/// position in `schedule`: for each element, true consumes the next
/// instruction reference, false the next data reference; when one side is
/// exhausted the remainder of the other is appended. The common case —
/// produced by the simulator — interleaves in program order instead.
AddressTrace MultiplexTraces(const AddressTrace& instruction,
                             const AddressTrace& data,
                             const std::vector<bool>& schedule);

}  // namespace abenc
