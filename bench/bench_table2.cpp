// Table 2: existing encoding schemes (binary, T0, bus-invert) on the
// dedicated *instruction* address bus of the nine benchmarks.
#include "bench/bench_util.h"
#include "core/codec_factory.h"

int main(int argc, char** argv) {
  abenc::bench::PrintExperimentalTable(
      "Table 2: Existing Encoding Schemes, Instruction Address Streams",
      abenc::bench::StreamKind::kInstruction, {"t0", "bus-invert"},
      abenc::bench::ParseBenchOptions(argc, argv));
  return 0;
}
