// Extension: the reliability price of redundancy. Every code is hit with
// random single-bit bus upsets on a benchmark multiplexed stream; the
// table reports the average number of corrupted decoded addresses per
// upset and the worst observed propagation. Plain binary and the invert
// codes corrupt exactly one address; the history-carrying codes smear the
// error until they resynchronise — the hidden cost of the power savings.
#include <algorithm>
#include <iostream>
#include <tuple>

#include "channel/upset.h"
#include "core/resilience.h"
#include "report/table.h"
#include "sim/program_library.h"

int main() {
  using namespace abenc;

  const sim::ProgramTraces traces =
      sim::RunBenchmark(sim::FindBenchmarkProgram("gzip"));
  auto accesses = traces.multiplexed.ToBusAccesses();
  accesses.resize(std::min<std::size_t>(accesses.size(), 20000));
  const CodecOptions options;

  std::cout << "Extension: damage per single-bit bus upset (gzip "
               "multiplexed stream, " << accesses.size()
            << " references, 60 random injections per code)\n\n";

  TextTable table({"Code", "Avg corrupted addrs", "Worst observed",
                   "Worst recovery (cycles)"});
  constexpr std::size_t kInjections = 60;
  for (const std::string& name :
       {std::string("binary"), std::string("gray-word"),
        std::string("bus-invert"), std::string("t0"), std::string("t0-bi"),
        std::string("dual-t0"), std::string("dual-t0-bi"),
        std::string("inc-xor"), std::string("offset"),
        std::string("working-zone"), std::string("mtf")}) {
    const double average =
        AverageUpsetCorruption(name, options, accesses, kInjections, 77);
    // Probe a few fixed spots for the worst case.
    std::size_t worst = 0;
    std::size_t worst_recovery = 0;
    for (std::size_t cycle = 500; cycle < accesses.size();
         cycle += accesses.size() / 12) {
      const UpsetResult r =
          MeasureSingleUpset(name, options, accesses, cycle, 5);
      worst = std::max(worst, r.corrupted_addresses);
      worst_recovery = std::max(worst_recovery, r.recovery_cycles);
    }
    table.AddRow({name, FormatFixed(average, 2),
                  FormatCount(static_cast<long long>(worst)),
                  FormatCount(static_cast<long long>(worst_recovery))});
  }
  std::cout << table.ToString();

  // Protected variants: the same experiment through the channel layer.
  // SECDED corrects any single flipped line before the decoder sees it;
  // a period-64 resync beacon leaves corruption in but caps how long a
  // history code can smear it.
  std::cout << "\nProtected variants (channel layer, 20 injections per "
               "row):\n\n";
  TextTable protected_table({"Code", "Protection", "Avg corrupted addrs",
                             "Worst recovery (cycles)"});
  constexpr std::size_t kProtectedInjections = 20;
  constexpr std::size_t kBeaconPeriod = 64;
  for (const std::string& name :
       {std::string("t0"), std::string("dual-t0-bi"), std::string("offset"),
        std::string("inc-xor"), std::string("working-zone"),
        std::string("mtf")}) {
    for (const auto& [protection, period, label] :
         {std::tuple{Protection::kSecded, std::size_t{0}, "secded"},
          std::tuple{Protection::kNone, kBeaconPeriod, "beacon-64"}}) {
      ChannelConfig config;
      config.codec_name = name;
      config.protection = protection;
      config.resync_period = period;
      const double average =
          AverageUpsetCorruption(config, accesses, kProtectedInjections, 77);
      std::size_t worst_recovery = 0;
      for (std::size_t cycle = 500; cycle < accesses.size();
           cycle += accesses.size() / 12) {
        worst_recovery = std::max(
            worst_recovery,
            MeasureSingleUpset(config, accesses, cycle, 5).recovery_cycles);
      }
      protected_table.AddRow(
          {name, label, FormatFixed(average, 2),
           FormatCount(static_cast<long long>(worst_recovery))});
    }
  }
  std::cout << protected_table.ToString();

  std::cout << "\nThree regimes: stateless decodes (binary, Gray,\n"
               "bus-invert) lose exactly one address. The T0 family is\n"
               "nearly as good — during frozen cycles the decoder ignores\n"
               "the data lines entirely, so most upsets are absorbed, and\n"
               "a poisoned regeneration base resyncs at the next binary\n"
               "cycle. The accumulating decoders (offset, INC-XOR) and the\n"
               "dictionary codes (working-zone, MTF) can smear one flip\n"
               "across thousands of addresses: the hidden reliability\n"
               "price of their power savings.\n";
  return 0;
}
