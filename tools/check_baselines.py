#!/usr/bin/env python3
"""Compare bench --json outputs against the committed baselines.

The CI `bench-regression` job runs each table bench with `--json` and
feeds the output directory here. For every baseline document under
--baselines, the same-named file must exist under --results and agree
on the codec list, the per-table average savings and the average
in-sequence percentage to within --tolerance (default 1e-9 — the
parallel engine is bit-identical to the sequential path, so legitimate
runs match far tighter than that; see CONTRIBUTING.md for the
baseline-update workflow when a code change moves a number on purpose).

Exit status: 0 when everything matches, 1 on any deviation or missing
file, 2 on usage errors.
"""

import argparse
import json
import sys
from pathlib import Path


def fail(messages):
    for message in messages:
        print(f"FAIL: {message}", file=sys.stderr)
    print(f"\n{len(messages)} deviation(s) from baseline.", file=sys.stderr)
    return 1


def compare_protection(name, baseline, result, tolerance, errors):
    baseline_keys = [(e["codec"], e["protection"])
                     for e in baseline["outcomes"]]
    result_keys = [(e["codec"], e["protection"])
                   for e in result.get("outcomes", [])]
    if baseline_keys != result_keys:
        errors.append(f"{name}: outcome grid changed: {result_keys} "
                      f"!= baseline {baseline_keys}")
        return
    for base_entry, result_entry in zip(baseline["outcomes"],
                                        result["outcomes"]):
        key = f"{base_entry['codec']}/{base_entry['protection']}"
        for field in ("transitions_per_cycle", "savings_percent"):
            expected = base_entry[field]
            measured = result_entry[field]
            if abs(measured - expected) > tolerance:
                errors.append(
                    f"{name}: {field} for {key} deviates: "
                    f"measured {measured!r} vs baseline {expected!r}")


def compare_net_pipeline(name, baseline, result, tolerance, errors):
    baseline_modes = [e["mode"] for e in baseline["modes"]]
    result_modes = [e["mode"] for e in result.get("modes", [])]
    if baseline_modes != result_modes:
        errors.append(f"{name}: mode list {result_modes} "
                      f"!= baseline {baseline_modes}")
        return
    for base_entry, result_entry in zip(baseline["modes"], result["modes"]):
        mode = base_entry["mode"]
        for field in ("accesses", "transitions", "peak_transitions",
                      "switches"):
            expected = base_entry[field]
            measured = result_entry.get(field)
            if measured is None or abs(measured - expected) > tolerance:
                errors.append(
                    f"{name}: {field} for mode {mode!r} deviates: "
                    f"measured {measured!r} vs baseline {expected!r}")


def compare_document(name, baseline, result, tolerance, errors):
    schema = baseline.get("schema")
    if result.get("schema") != schema:
        errors.append(
            f"{name}: schema {result.get('schema')!r} != baseline {schema!r}")
        return
    if schema == "abenc.protection.v1":
        compare_protection(name, baseline, result, tolerance, errors)
        return
    if schema == "abenc.net_pipeline.v1":
        compare_net_pipeline(name, baseline, result, tolerance, errors)
        return

    baseline_codecs = [e["codec"] for e in baseline["average_savings"]]
    result_codecs = [e["codec"] for e in result.get("average_savings", [])]
    if baseline_codecs != result_codecs:
        errors.append(
            f"{name}: codec list {result_codecs} != baseline {baseline_codecs}")
        return

    for base_entry, result_entry in zip(baseline["average_savings"],
                                        result["average_savings"]):
        codec = base_entry["codec"]
        expected = base_entry["savings_percent"]
        measured = result_entry["savings_percent"]
        if abs(measured - expected) > tolerance:
            errors.append(
                f"{name}: average savings for {codec!r} deviates: "
                f"measured {measured!r} vs baseline {expected!r} "
                f"(|delta| = {abs(measured - expected):.3e} > {tolerance:g})")

    expected = baseline["average_in_sequence_percent"]
    measured = result.get("average_in_sequence_percent")
    if measured is None or abs(measured - expected) > tolerance:
        errors.append(
            f"{name}: average in-sequence percent deviates: "
            f"measured {measured!r} vs baseline {expected!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", type=Path, required=True,
                        help="directory of committed baseline JSON documents")
    parser.add_argument("--results", type=Path, required=True,
                        help="directory of freshly measured JSON documents")
    parser.add_argument("--tolerance", type=float, default=1e-9)
    args = parser.parse_args()

    baseline_files = sorted(args.baselines.glob("*.json"))
    if not baseline_files:
        print(f"no baselines found under {args.baselines}", file=sys.stderr)
        return 2

    errors = []
    for baseline_path in baseline_files:
        name = baseline_path.name
        result_path = args.results / name
        if not result_path.is_file():
            errors.append(f"{name}: no result file at {result_path}")
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(result_path) as f:
            result = json.load(f)
        compare_document(name, baseline, result, args.tolerance, errors)
        if not any(e.startswith(name) for e in errors):
            print(f"OK: {name}")

    if errors:
        return fail(errors)
    print(f"\nAll {len(baseline_files)} baseline document(s) match "
          f"within {args.tolerance:g}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
