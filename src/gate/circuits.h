// Gate-level implementations of the Section 4 codecs: binary, T0 and
// dual T0_BI encoders and decoders, synthesised structurally from the
// cell catalogue and verified against the behavioural codecs by test.
#pragma once

#include <map>
#include <vector>

#include "core/types.h"
#include "gate/netlist.h"

namespace abenc::gate {

/// Arithmetic style for the +S incrementers inside the T0-family codecs:
/// a ripple carry chain (minimal area, O(N) depth) or a parallel-prefix
/// AND tree (O(log N) depth, more cells) — incrementing by a constant
/// power of two needs only prefix ANDs, no generate terms.
enum class AdderStyle { kRipple, kPrefix };

/// A built codec circuit and its port lists.
struct CodecCircuit {
  Netlist netlist;
  std::vector<NetId> address_in;    // encoder: b(t); decoder: B(t)
  NetId sel_in = kNoNet;            // dual codes only
  std::vector<NetId> redundant_in;  // decoder side: INC / INCV
  std::vector<NetId> data_out;      // encoder: B(t); decoder: b(t)
  std::vector<NetId> redundant_out; // encoder side: INC / INV / INCV
};

/// Buffered pass-through, the paper's "binary encoder/decoder consist only
/// of internal buffers".
CodecCircuit BuildBinaryEncoder(unsigned width, double output_load_pf);
CodecCircuit BuildBinaryDecoder(unsigned width, double output_load_pf);

/// Eq. 3 encoder / Eq. 4 decoder ([6]'s architecture: address register,
/// +S incrementer, comparator, frozen-bus multiplexor).
CodecCircuit BuildT0Encoder(unsigned width, Word stride,
                            double output_load_pf,
                            AdderStyle style = AdderStyle::kRipple);
CodecCircuit BuildT0Decoder(unsigned width, Word stride,
                            double output_load_pf,
                            AdderStyle style = AdderStyle::kRipple);

/// Eq. 1 encoder (Hamming-distance evaluator + majority voter); Eq. 2
/// decoding is a conditional inversion.
CodecCircuit BuildBusInvertEncoder(unsigned width, double output_load_pf);
CodecCircuit BuildBusInvertDecoder(unsigned width, double output_load_pf);

/// Eq. 6 encoder / Eq. 7 decoder: T0 section plus a bus-invert section
/// thresholding over all N+2 encoded lines; INC and INV travel separately.
CodecCircuit BuildT0BIEncoder(unsigned width, Word stride,
                              double output_load_pf,
                              AdderStyle style = AdderStyle::kRipple);
CodecCircuit BuildT0BIDecoder(unsigned width, Word stride,
                              double output_load_pf,
                              AdderStyle style = AdderStyle::kRipple);

/// Eq. 8 encoder / Eq. 10 decoder: T0 gated by SEL with the Eq. 9 shadow
/// register; data slots pass through in binary.
CodecCircuit BuildDualT0Encoder(unsigned width, Word stride,
                                double output_load_pf,
                                AdderStyle style = AdderStyle::kRipple);
CodecCircuit BuildDualT0Decoder(unsigned width, Word stride,
                                double output_load_pf,
                                AdderStyle style = AdderStyle::kRipple);

/// Eq. 11 encoder / Eq. 12 decoder (Section 4.1 architecture: T0 section
/// producing INC, bus-invert section producing INV, output mux driven by
/// SEL and INCV = INC + INV).
CodecCircuit BuildDualT0BIEncoder(unsigned width, Word stride,
                                  double output_load_pf,
                                  AdderStyle style = AdderStyle::kRipple);
CodecCircuit BuildDualT0BIDecoder(unsigned width, Word stride,
                                  double output_load_pf,
                                  AdderStyle style = AdderStyle::kRipple);

/// Input assignment for one cycle of a codec circuit.
std::map<NetId, bool> DriveInputs(const CodecCircuit& circuit, Word address,
                                  bool sel, Word redundant = 0);

/// Read a port list back as an integer (bit i = port[i]).
Word ReadBus(const class GateSimulator& sim,
             const std::vector<NetId>& ports);

}  // namespace abenc::gate
