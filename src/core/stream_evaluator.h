// Runs a codec over an address stream and reports the paper's metrics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/transition_counter.h"

namespace abenc {

class TraceSource;   // core/trace_source.h
struct CodecOptions;  // core/codec_factory.h

// BusAccess (one address plus the SEL signal) lives in core/types.h so
// the Codec block interface can speak it; it is re-exported here for
// the many stream-level includers.

/// Metrics of one codec over one stream — the columns of Tables 2-7.
struct EvalResult {
  std::string codec_name;
  std::size_t stream_length = 0;
  long long transitions = 0;
  int peak_transitions = 0;          // worst single-cycle toggle count
  double in_sequence_percent = 0.0;  // fraction of b(t) = b(t-1) + S, in %
  std::vector<long long> per_line;

  double average_transitions_per_cycle() const {
    return stream_length == 0 ? 0.0
                              : static_cast<double>(transitions) /
                                    static_cast<double>(stream_length);
  }
};

/// Percentage of transitions saved relative to a reference (binary) count,
/// as reported in the paper's "Savings" columns.
///
/// A zero reference with a nonzero codec count has no meaningful
/// percentage — reporting 0.0 there would disguise a strictly *worse*
/// code as parity — so that case returns quiet NaN. Renderers spell it
/// out: FormatPercent (report/table.h) prints "n/a" and the JSON writer
/// emits null (JSON has no NaN). Zero-vs-zero is genuine parity and
/// stays 0.0.
double SavingsPercent(long long transitions, long long binary_transitions);

/// Fraction (in percent) of accesses whose address equals the previous
/// access's address plus `stride` — the paper's "In-Seq Addr." column.
/// For multiplexed streams the paper measures raw adjacency on the bus,
/// which is what this computes.
double InSequencePercent(std::span<const BusAccess> stream, Word stride,
                         unsigned width);

/// Run `codec` over `stream` from reset and collect metrics.
/// If `verify_decode` is set, every encoded state is also pushed through
/// the codec's decoder and checked against the original address; a
/// mismatch throws std::logic_error (used by the test-suite and as a
/// self-check by the benches).
EvalResult Evaluate(Codec& codec, std::span<const BusAccess> stream,
                    Word stride_for_stats = 4, bool verify_decode = false);

/// The batched hot path: run `codec` over the stream in fixed-size
/// chunks — Codec::EncodeBlock per chunk (one virtual dispatch per
/// chunk; the high-traffic codes install devirtualized kernels), then a
/// word-parallel XOR+popcount transition sweep over the encoded block
/// (core/codec_kernel.h).
///
/// Bit-identity guarantee: for every chunk size the returned EvalResult
/// is *identical* to Evaluate() on the same stream — transitions, peak,
/// per-line histogram, in-sequence percentage and the decode-verify
/// throw behaviour all match. The contract is enforced for all factory
/// codecs by the `batched-identity` universal verify property and
/// tests/stream_evaluator_test, which is what lets the experiment
/// engine and the committed bench baselines switch onto this path with
/// byte-identical outputs.
///
/// `chunk_size == 0` selects kDefaultChunkSize (core/codec_kernel.h).
/// When a MetricsRegistry is installed, records chunk/word counters and
/// an `evaluator.batched.words_per_second` gauge.
EvalResult EvaluateBatched(Codec& codec, const TraceSource& source,
                           Word stride_for_stats = 4,
                           bool verify_decode = false,
                           std::size_t chunk_size = 0);

/// Convenience overload over a materialized stream.
EvalResult EvaluateBatched(Codec& codec, std::span<const BusAccess> stream,
                           Word stride_for_stats = 4,
                           bool verify_decode = false,
                           std::size_t chunk_size = 0);

/// Serial reference for accounting across codec-state teardowns: exactly
/// Evaluate(), except the codec and the power-on transition baseline are
/// returned to the reset state immediately before each stream index in
/// `reset_points` (ascending; out-of-range and duplicate points are
/// no-ops). Segments are therefore independent Evaluate() runs whose
/// transition totals, per-line histograms and stream lengths sum and
/// whose peaks max; the in-sequence percentage remains a property of the
/// whole stream, as in Evaluate().
///
/// This is the contract an encoding-service session honours when it is
/// evicted at index k and later re-admitted (src/service/session.h): by
/// the reset-replay property (src/verify/properties.h) a freshly
/// constructed codec encodes identically to a Reset() one, so the
/// session's lifetime accounting must equal
/// EvaluateWithResets(stream, {k}).
EvalResult EvaluateWithResets(Codec& codec, std::span<const BusAccess> stream,
                              std::span<const std::size_t> reset_points,
                              Word stride_for_stats = 4,
                              bool verify_decode = false);

/// One entry of a session's codec-switch schedule: from lifetime access
/// `index` onward the stream is encoded by `codec_name`, built fresh
/// from the factory. This is the wire-replayable record a renegotiated
/// service session reports (RENEGOTIATE_ACK pins `index`, STATS replays
/// the whole schedule — docs/PROTOCOL.md).
struct CodecSwitchPoint {
  std::size_t index = 0;
  std::string codec_name;

  bool operator==(const CodecSwitchPoint&) const = default;
};

/// Serial reference for a session whose codec was renegotiated
/// mid-stream: segment [switches[i].index, switches[i+1].index) is an
/// independent EvaluateWithResets() run of a freshly built
/// switches[i].codec_name (the stream up to the first switch uses
/// `initial_codec`). `reset_points` are the session's eviction/resync
/// teardowns and may fall anywhere; a reset point equal to a segment
/// start is a no-op (the codec there is already fresh). Folding matches
/// EvaluateWithResets: transitions and stream lengths sum, peaks max,
/// per-line histograms sum element-wise zero-extended to the widest
/// segment geometry, and the in-sequence percentage remains a property
/// of the whole stream. `switches` must be ascending by index.
///
/// An empty schedule degenerates to EvaluateWithResets(initial_codec),
/// which is why the soak harnesses can verify renegotiated and
/// untouched sessions through the same call.
EvalResult EvaluateWithSchedule(const std::string& initial_codec,
                                const CodecOptions& options,
                                std::span<const BusAccess> stream,
                                std::span<const CodecSwitchPoint> switches,
                                std::span<const std::size_t> reset_points,
                                Word stride_for_stats = 4,
                                bool verify_decode = false);

/// Convenience: wrap a pure address sequence (dedicated bus) as BusAccesses.
std::vector<BusAccess> ToAccesses(std::span<const Word> addresses,
                                  bool sel = true);

}  // namespace abenc
