// Dynamic-power extraction from simulated switching activity.
#pragma once

#include <string>
#include <vector>

#include "gate/netlist.h"
#include "gate/simulator.h"

namespace abenc::gate {

/// Power breakdown of one simulated netlist, in milliwatts.
struct PowerReport {
  double core_mw = 0.0;    // internal gate/flop nets
  double output_mw = 0.0;  // marked primary-output nets (incl. their load)
  double total_mw = 0.0;
};

/// P = 1/2 * Vdd^2 * f * sum_nets( alpha_net * C_net ), split between the
/// marked outputs and everything else. `frequency_hz` defaults to the
/// paper's 100 MHz, `vdd` to 3.3 V.
///
/// `glitch_per_level` models the spurious transitions a zero-delay
/// simulation cannot see: a net whose driving cone has combinational
/// depth d is charged alpha * (1 + glitch_per_level * d) transitions per
/// cycle. Deep arithmetic structures (the Hamming evaluator and majority
/// voter of the bus-invert section) glitch heavily in real silicon, which
/// is why the paper's synthesised dual T0_BI encoder costs an order of
/// magnitude more than the lean T0 encoder. 0 disables the model;
/// kDefaultGlitchPerLevel is used by the Table 8/9 benches. Glitching is
/// never applied to flop outputs or marked primary outputs (registered or
/// pad-driven nets settle once per cycle).
inline constexpr double kDefaultGlitchPerLevel = 0.25;
PowerReport EstimatePower(const Netlist& netlist, const GateSimulator& sim,
                          double frequency_hz = kClockHz,
                          double vdd = kVddVolts,
                          double glitch_per_level = 0.0);

/// Off-chip pad bank (Table 9): each line's pad output drives
/// `external_load_pf`; pad power is computed from the per-line toggle
/// counts of the encoder's marked outputs.
double PadPowerMw(const Netlist& netlist, const GateSimulator& sim,
                  double external_load_pf, double frequency_hz = kClockHz,
                  double vdd = kVddVolts);

}  // namespace abenc::gate
